"""Tests for the learned precision surrogate.

The load-bearing contract: a warm-started ``minimum_precision`` returns
*bit-identical* results to the cold search on every scenario — with a
good model it just gets there in fewer probes, and with a wrong model it
falls back to the full bracket.  The feed-forward controller never sets
any phase below its register floor, no matter what the model predicts.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import FPContext
from repro.fp.rounding import FULL_PRECISION
from repro.obs.features import EVENT_FEATURES, features_from_events
from repro.tuning import (
    PrecisionController,
    PrecisionQuery,
    SurrogateModel,
    minimum_precision,
)
from repro.tuning import surrogate as S
from repro.workloads import SCENARIO_NAMES

STEPS = 12
SCALE = 0.3


class StubSurrogate:
    """Predicts a fixed width (or per-scenario widths) without a model."""

    def __init__(self, bits):
        self.bits = bits

    def predict_query(self, query: PrecisionQuery) -> int:
        if isinstance(self.bits, dict):
            return self.bits[query.scenario]
        return self.bits


@pytest.fixture(scope="module")
def cold_results():
    """Cold-search ground truth for every scenario (shared by tests)."""
    results = {}
    for scenario in SCENARIO_NAMES:
        stats = {}
        bits = minimum_precision(scenario, steps=STEPS, scale=SCALE,
                                 stats=stats)
        results[scenario] = (bits, stats["probes"])
    return results


class TestWarmStartIdentity:
    def test_exact_prediction_identical_and_fewer_probes(
            self, cold_results):
        """A perfect model: identical bits, strictly fewer probes in
        aggregate (the PR's acceptance gate)."""
        predictions = {s: bits for s, (bits, _) in cold_results.items()}
        stub = StubSurrogate(predictions)
        cold_total = warm_total = 0
        for scenario, (cold_bits, cold_probes) in cold_results.items():
            stats = {}
            warm_bits = minimum_precision(
                scenario, steps=STEPS, scale=SCALE, surrogate=stub,
                stats=stats)
            assert warm_bits == cold_bits, scenario
            assert stats["probes"] <= cold_probes, scenario
            assert stats["warm"] == "hit", scenario
            cold_total += cold_probes
            warm_total += stats["probes"]
        assert warm_total < cold_total

    def test_wrong_high_prediction_falls_back_identically(
            self, cold_results):
        for scenario, (cold_bits, _) in cold_results.items():
            stub = StubSurrogate(min(FULL_PRECISION, cold_bits + 8))
            stats = {}
            warm_bits = minimum_precision(
                scenario, steps=STEPS, scale=SCALE, surrogate=stub,
                stats=stats)
            assert warm_bits == cold_bits, scenario

    def test_wrong_low_prediction_falls_back_identically(
            self, cold_results):
        for scenario, (cold_bits, _) in cold_results.items():
            stub = StubSurrogate(max(1, cold_bits - 8))
            stats = {}
            warm_bits = minimum_precision(
                scenario, steps=STEPS, scale=SCALE, surrogate=stub,
                stats=stats)
            assert warm_bits == cold_bits, scenario

    @pytest.mark.parametrize("predicted", [1, 5, 12, 23, -3, 40])
    def test_any_prediction_is_safe_on_one_scenario(self, predicted,
                                                    cold_results):
        cold_bits, _ = cold_results["ragdoll"]
        stats = {}
        warm_bits = minimum_precision(
            "ragdoll", steps=STEPS, scale=SCALE,
            surrogate=StubSurrogate(predicted), stats=stats)
        assert warm_bits == cold_bits
        assert stats["warm"] in ("hit", "fallback")

    def test_stats_fields(self, cold_results):
        stats = {}
        bits = minimum_precision("continuous", steps=STEPS, scale=SCALE,
                                 stats=stats)
        assert stats["bits"] == bits
        assert stats["probes"] >= 1
        assert stats["warm"] is None
        assert stats["predicted"] is None


class TestTrainedModel:
    @pytest.fixture(scope="class")
    def dataset(self):
        return S.build_dataset(["continuous", "ragdoll"],
                               phases=("lcp",), steps=10, scale=SCALE,
                               probe_steps=4)

    @pytest.fixture(scope="class")
    def model(self, dataset):
        return S.train(dataset, probe_steps=4)

    def test_dataset_rows_are_complete(self, dataset):
        assert len(dataset) == 2
        for row in dataset:
            assert set(EVENT_FEATURES) <= set(row["features"])
            assert 1 <= row["label"] <= FULL_PRECISION
            assert row["search_probes"] >= 1

    def test_model_memorizes_training_grid(self, dataset, model):
        for row in dataset:
            bits = model.predict_bits(row["features"], row["phase"],
                                      row["mode"])
            assert bits == row["label"]

    def test_floors_never_undershot(self, dataset, model):
        floor = min(row["label"] for row in dataset)
        bad_features = {name: -1e6 for name in S.BASE_FEATURES}
        assert model.predict_bits(bad_features, "lcp") >= max(1, floor)

    def test_save_load_roundtrip(self, model, tmp_path):
        path = model.save(tmp_path / "model.json")
        clone = SurrogateModel.load(path)
        features = {name: 1.0 for name in S.BASE_FEATURES}
        assert clone.predict_bits(features, "lcp") == \
            model.predict_bits(features, "lcp")
        assert clone.floors == model.floors
        payload = json.loads(path.read_text())
        assert payload["format"] == "repro.surrogate.v1"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"format": "something.else"}))
        with pytest.raises(ValueError):
            SurrogateModel.load(path)

    def test_trained_warm_start_identity(self, model):
        report = S.evaluate_warm_start(
            model, scenarios=["continuous", "ragdoll"], phases=("lcp",),
            steps=10, scale=SCALE)
        assert report["identical"]
        assert report["warm_probes"] <= report["cold_probes"]

    def test_feed_forward_register_respects_floors(self, model):
        register = {"lcp": 9, "narrow": 9}
        targets = model.feed_forward_register(
            "continuous", register, steps=10, scale=SCALE)
        assert set(targets) == set(register)
        for phase, bits in targets.items():
            assert register[phase] <= bits <= FULL_PRECISION


class TestTable1Plumbing:
    def test_surrogate_grid_identical_to_cold(self):
        from repro.experiments.table1 import compute_table1

        cold = compute_table1(steps=10, scale=SCALE,
                              scenarios=["continuous"], use_cache=False,
                              workers=1)
        warm = compute_table1(steps=10, scale=SCALE,
                              scenarios=["continuous"], use_cache=False,
                              workers=1,
                              surrogate=StubSurrogate({"continuous": 1}))
        assert warm.independent == cold.independent
        assert warm.narrow_combined == cold.narrow_combined
        assert isinstance(cold.probes, int) and cold.probes >= 1
        assert isinstance(warm.probes, int) and warm.probes >= 1


class TestFeedForwardProperty:
    @settings(max_examples=30, deadline=None)
    @given(
        floor=st.integers(min_value=1, max_value=FULL_PRECISION),
        predicted=st.integers(min_value=-50, max_value=80),
        signals=st.lists(
            st.one_of(st.none(),
                      st.floats(min_value=0.0, max_value=2.0,
                                allow_nan=False)),
            max_size=12),
    )
    def test_never_below_register_floor(self, floor, predicted, signals):
        """Whatever the model predicts and whatever the energy signal
        does, no controlled phase ever runs below its register floor."""
        ctx = FPContext({"lcp": FULL_PRECISION})
        controller = PrecisionController(
            ctx, {"lcp": floor}, surrogate={"lcp": predicted})
        assert ctx.precision_for("lcp") >= floor
        for step, signal in enumerate(signals):
            controller.observe(signal, step=step)
            assert ctx.precision_for("lcp") >= floor

    @settings(max_examples=20, deadline=None)
    @given(predicted=st.integers(min_value=-50, max_value=80))
    def test_guard_still_throttles_on_violation(self, predicted):
        ctx = FPContext({"lcp": FULL_PRECISION})
        controller = PrecisionController(
            ctx, {"lcp": 6}, surrogate={"lcp": predicted})
        controller.observe(0.9, step=0)
        assert ctx.precision_for("lcp") == FULL_PRECISION


class TestFeatures:
    def _step(self, total, delta=0.01, violation=False, census=None,
              contacts=3, islands=1):
        return {
            "kind": "step",
            "energy": {"total": total, "delta_rel": delta,
                       "violation": violation},
            "census": census or {"total": 100, "trivial": 40,
                                 "memo_hits": 10},
            "contacts": contacts,
            "islands": islands,
        }

    def test_empty_reference_returns_zero_row(self):
        features = features_from_events([], [])
        assert set(features) == set(EVENT_FEATURES)
        assert all(v == 0.0 for v in features.values())

    def test_missing_probe_flags_truncation_and_blowup(self):
        ref = [self._step(10.0), self._step(11.0)]
        features = features_from_events(ref, [])
        assert features["probe_truncated"] == 1.0
        assert features["probe_blowup"] == 1.0

    def test_nonfinite_probe_energy_flags_blowup(self):
        ref = [self._step(10.0), self._step(11.0)]
        probe = [self._step(10.0), self._step(float("nan"))]
        features = features_from_events(ref, probe)
        assert features["probe_blowup"] == 1.0

    def test_truncated_probe_flagged(self):
        ref = [self._step(10.0), self._step(11.0), self._step(12.0)]
        probe = [self._step(10.0)]
        features = features_from_events(ref, probe)
        assert features["probe_truncated"] == 1.0

    def test_census_fractions(self):
        ref = [self._step(10.0)]
        features = features_from_events(ref, ref)
        assert features["trivial_frac"] == pytest.approx(0.4)
        assert features["memo_frac"] == pytest.approx(0.1)

    def test_deltas_are_clipped(self):
        ref = [self._step(10.0, delta=1e12), self._step(11.0)]
        features = features_from_events(ref, ref)
        assert features["ref_delta_max"] == 100.0

    def test_extract_features_is_deterministic(self):
        a = S.extract_features("continuous", steps=10, scale=SCALE,
                               probe_steps=4)
        b = S.extract_features("continuous", steps=10, scale=SCALE,
                               probe_steps=4)
        assert a == b
        assert set(S.BASE_FEATURES) <= set(a)
