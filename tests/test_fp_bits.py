"""Unit tests for binary32 bit manipulation."""

import math
import struct

import numpy as np
import pytest

from repro.fp.bits import (
    EXPONENT_BIAS,
    EXPONENT_MASK,
    MANTISSA_BITS,
    MANTISSA_MASK,
    SIGN_MASK,
    array_to_bits,
    biased_exponent,
    bits_to_array,
    bits_to_float,
    compose,
    float_to_bits,
    is_finite_bits,
    mantissa_field,
    sign_of,
    to_float32,
)


class TestConstants:
    def test_mantissa_width(self):
        assert MANTISSA_BITS == 23

    def test_masks_are_disjoint(self):
        assert MANTISSA_MASK & EXPONENT_MASK == 0
        assert MANTISSA_MASK & SIGN_MASK == 0
        assert EXPONENT_MASK & SIGN_MASK == 0

    def test_masks_cover_word(self):
        assert MANTISSA_MASK | EXPONENT_MASK | SIGN_MASK == 0xFFFFFFFF

    def test_bias(self):
        assert EXPONENT_BIAS == 127


class TestScalarConversion:
    def test_one(self):
        assert float_to_bits(1.0) == 0x3F800000

    def test_minus_two(self):
        assert float_to_bits(-2.0) == 0xC0000000

    def test_zero(self):
        assert float_to_bits(0.0) == 0

    def test_roundtrip(self):
        for value in (0.0, 1.0, -1.5, 3.14159, 1e-20, -7e12):
            narrowed = to_float32(value)
            assert bits_to_float(float_to_bits(value)) == narrowed

    def test_narrowing_matches_struct(self):
        value = 0.1
        expected = struct.unpack("<f", struct.pack("<f", value))[0]
        assert to_float32(value) == expected

    def test_infinity(self):
        assert float_to_bits(math.inf) == 0x7F800000
        assert bits_to_float(0xFF800000) == -math.inf

    def test_nan_roundtrip(self):
        assert math.isnan(bits_to_float(0x7FC00000))


class TestFieldExtraction:
    def test_sign(self):
        assert sign_of(float_to_bits(-1.0)) == 1
        assert sign_of(float_to_bits(1.0)) == 0

    def test_exponent_of_one(self):
        assert biased_exponent(float_to_bits(1.0)) == EXPONENT_BIAS

    def test_exponent_of_two(self):
        assert biased_exponent(float_to_bits(2.0)) == EXPONENT_BIAS + 1

    def test_mantissa_of_power_of_two(self):
        assert mantissa_field(float_to_bits(4.0)) == 0

    def test_mantissa_of_one_and_half(self):
        assert mantissa_field(float_to_bits(1.5)) == 1 << 22


class TestCompose:
    def test_roundtrip_fields(self):
        bits = float_to_bits(-6.25)
        rebuilt = compose(sign_of(bits), biased_exponent(bits),
                          mantissa_field(bits))
        assert rebuilt == bits

    def test_exponent_range_checked(self):
        with pytest.raises(ValueError):
            compose(0, 256, 0)

    def test_mantissa_range_checked(self):
        with pytest.raises(ValueError):
            compose(0, 127, 1 << 23)


class TestFiniteCheck:
    def test_finite(self):
        assert is_finite_bits(float_to_bits(123.0))

    def test_inf_not_finite(self):
        assert not is_finite_bits(0x7F800000)

    def test_nan_not_finite(self):
        assert not is_finite_bits(0x7FC00001)


class TestArrayConversion:
    def test_roundtrip(self):
        values = np.array([0.0, 1.0, -2.5, 3e7], dtype=np.float32)
        assert np.array_equal(bits_to_array(array_to_bits(values)), values)

    def test_matches_scalar_path(self):
        values = np.array([1.0, -1.0, 0.5], dtype=np.float32)
        bits = array_to_bits(values)
        for value, b in zip(values, bits):
            assert float_to_bits(float(value)) == int(b)

    def test_accepts_float64_input(self):
        bits = array_to_bits(np.array([1.0], dtype=np.float64))
        assert bits[0] == 0x3F800000

    def test_shape_preserved(self):
        values = np.zeros((2, 3), dtype=np.float32)
        assert array_to_bits(values).shape == (2, 3)
