"""Unit + property tests for mantissa precision reduction."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import (
    MANTISSA_BITS,
    float_to_bits,
    mantissa_field,
    to_float32,
)
from repro.fp.rounding import (
    FULL_PRECISION,
    RoundingMode,
    reduce_array,
    reduce_array_fast,
    reduce_bits,
    reduce_scalar,
)

MODES = list(RoundingMode)

finite_floats = st.floats(
    min_value=-(2.0 ** 100), max_value=2.0 ** 100, allow_nan=False,
    allow_infinity=False, width=32,
).filter(lambda x: x == 0.0 or abs(x) > 1e-30)

precisions = st.integers(min_value=0, max_value=MANTISSA_BITS)


class TestModeParsing:
    @pytest.mark.parametrize("alias,expected", [
        ("rn", RoundingMode.NEAREST),
        ("round-to-nearest", RoundingMode.NEAREST),
        ("JAM", RoundingMode.JAMMING),
        ("truncation", RoundingMode.TRUNCATION),
        ("round-to-zero", RoundingMode.TRUNCATION),
    ])
    def test_aliases(self, alias, expected):
        assert RoundingMode.parse(alias) is expected

    def test_identity(self):
        assert RoundingMode.parse(RoundingMode.JAMMING) is \
            RoundingMode.JAMMING

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            RoundingMode.parse("bananas")


class TestKnownValues:
    def test_truncate_five_bits(self):
        # 1.2345678 -> mantissa 00111100..., keep 5 bits -> 1.21875
        assert reduce_scalar(1.2345678, 5, RoundingMode.TRUNCATION) == \
            1.21875

    def test_nearest_five_bits(self):
        assert reduce_scalar(1.2345678, 5, RoundingMode.NEAREST) == 1.25

    def test_jam_sets_lsb(self):
        # 1.0 + 2^-7 has a zero kept LSB but a one in the guard window
        # (three bits immediately below the LSB) at 5-bit precision.
        value = to_float32(1.0 + 2.0 ** -7)
        jammed = reduce_scalar(value, 5, RoundingMode.JAMMING)
        assert jammed == 1.0 + 2.0 ** -5

    def test_jam_only_inspects_three_guards(self):
        # A one *below* the guard window is dropped entirely.
        value = to_float32(1.0 + 2.0 ** -10)
        assert reduce_scalar(value, 5, RoundingMode.JAMMING) == 1.0

    def test_jam_keeps_set_lsb(self):
        value = 1.0 + 2.0 ** -5  # LSB already one, no guards
        assert reduce_scalar(value, 5, RoundingMode.JAMMING) == value

    def test_nearest_carries_into_exponent(self):
        # 1.1111111... rounds up to 2.0
        value = to_float32(2.0 - 2.0 ** -12)
        assert reduce_scalar(value, 4, RoundingMode.NEAREST) == 2.0


class TestSpecialValues:
    @pytest.mark.parametrize("mode", MODES)
    def test_zero_unchanged(self, mode):
        assert reduce_scalar(0.0, 3, mode) == 0.0

    @pytest.mark.parametrize("mode", MODES)
    def test_negative_zero_unchanged(self, mode):
        result = reduce_scalar(-0.0, 3, mode)
        assert result == 0.0 and math.copysign(1, result) == -1

    @pytest.mark.parametrize("mode", MODES)
    def test_infinity_unchanged(self, mode):
        assert reduce_scalar(math.inf, 3, mode) == math.inf

    @pytest.mark.parametrize("mode", MODES)
    def test_nan_stays_nan(self, mode):
        assert math.isnan(reduce_scalar(math.nan, 3, mode))

    @pytest.mark.parametrize("mode", MODES)
    def test_denormal_unchanged(self, mode):
        tiny = 1e-40  # denormal in binary32
        assert reduce_scalar(tiny, 3, mode) == to_float32(tiny)

    def test_precision_out_of_range(self):
        with pytest.raises(ValueError):
            reduce_bits(0, 24, RoundingMode.JAMMING)
        with pytest.raises(ValueError):
            reduce_bits(0, -1, RoundingMode.JAMMING)


class TestProperties:
    @given(finite_floats, precisions, st.sampled_from(MODES))
    @settings(max_examples=300, deadline=None)
    def test_idempotent(self, value, precision, mode):
        once = reduce_scalar(value, precision, mode)
        assert reduce_scalar(once, precision, mode) == once

    @given(finite_floats, precisions, st.sampled_from(MODES))
    @settings(max_examples=300, deadline=None)
    def test_mantissa_bits_cleared(self, value, precision, mode):
        reduced = reduce_scalar(value, precision, mode)
        bits = float_to_bits(reduced)
        if math.isfinite(reduced) and abs(reduced) > 1e-30:
            drop = MANTISSA_BITS - precision
            assert mantissa_field(bits) & ((1 << drop) - 1) == 0

    @given(finite_floats, precisions)
    @settings(max_examples=300, deadline=None)
    def test_truncation_shrinks_magnitude(self, value, precision):
        reduced = reduce_scalar(value, precision, RoundingMode.TRUNCATION)
        assert abs(reduced) <= abs(to_float32(value))

    @given(finite_floats, precisions)
    @settings(max_examples=300, deadline=None)
    def test_jamming_never_below_truncation(self, value, precision):
        jam = reduce_scalar(value, precision, RoundingMode.JAMMING)
        trunc = reduce_scalar(value, precision, RoundingMode.TRUNCATION)
        assert abs(jam) >= abs(trunc)

    @given(finite_floats, st.integers(min_value=1, max_value=22),
           st.sampled_from(MODES))
    @settings(max_examples=300, deadline=None)
    def test_relative_error_bounded(self, value, precision, mode):
        if value == 0:
            return
        reduced = reduce_scalar(value, precision, mode)
        if not math.isfinite(reduced):
            return  # nearest may round up to inf near the top of range
        # Error at most ~2 ulps at the reduced precision.
        assert abs(reduced - to_float32(value)) <= \
            2.0 * abs(value) * 2.0 ** -precision

    @given(finite_floats, st.integers(min_value=1, max_value=22))
    @settings(max_examples=200, deadline=None)
    def test_full_precision_is_identity(self, value, precision):
        assert reduce_scalar(value, FULL_PRECISION,
                             RoundingMode.JAMMING) == to_float32(value)

    @given(finite_floats, precisions, st.sampled_from(MODES))
    @settings(max_examples=200, deadline=None)
    def test_sign_preserved(self, value, precision, mode):
        reduced = reduce_scalar(value, precision, mode)
        if reduced != 0:
            assert math.copysign(1, reduced) == math.copysign(1, value)

    @given(st.lists(finite_floats, min_size=1, max_size=40),
           precisions, st.sampled_from(MODES))
    @settings(max_examples=150, deadline=None)
    def test_array_matches_scalar(self, values, precision, mode):
        arr = np.array(values, dtype=np.float32)
        vec = reduce_array(arr, precision, mode)
        for x, y in zip(arr, vec):
            assert reduce_scalar(float(x), precision, mode) == float(y)

    @given(st.lists(finite_floats, min_size=1, max_size=40),
           st.integers(min_value=0, max_value=22),
           st.sampled_from(MODES))
    @settings(max_examples=150, deadline=None)
    def test_fast_path_matches_exact_for_normals(self, values, precision,
                                                 mode):
        arr = np.array(values, dtype=np.float32)
        # Fast path deviates only on denormals/NaN payloads; strip them.
        normal = (np.abs(arr) > 1.2e-38) | (arr == 0.0)
        arr = arr[normal]
        if len(arr) == 0:
            return
        exact = reduce_array(arr, precision, mode)
        fast = reduce_array_fast(arr, precision, mode)
        assert np.array_equal(exact, fast)


class TestBiasDirection:
    """The paper picks jamming for its zero-mean error (Section 4.1.1)."""

    def test_truncation_negative_bias(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.5, 2.0, 4000).astype(np.float32)
        reduced = reduce_array(values, 8, RoundingMode.TRUNCATION)
        assert (reduced - values).mean() < -1e-5

    def test_jamming_mean_near_zero(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0.5, 2.0, 4000).astype(np.float32)
        trunc_bias = abs(
            (reduce_array(values, 8, RoundingMode.TRUNCATION)
             - values).mean())
        jam_bias = abs(
            (reduce_array(values, 8, RoundingMode.JAMMING)
             - values).mean())
        assert jam_bias < trunc_bias / 3

    def test_nearest_mean_near_zero(self):
        rng = np.random.default_rng(1)
        values = rng.uniform(0.5, 2.0, 4000).astype(np.float32)
        trunc_bias = abs(
            (reduce_array(values, 8, RoundingMode.TRUNCATION)
             - values).mean())
        rn_bias = abs(
            (reduce_array(values, 8, RoundingMode.NEAREST)
             - values).mean())
        assert rn_bias < trunc_bias / 3
