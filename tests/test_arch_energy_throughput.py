"""Tests for the energy model and throughput evaluation."""

import pytest

from repro.arch import params
from repro.arch.energy import (
    baseline_energy,
    energy_reduction,
    phase_energy,
    trivialized_fraction,
)
from repro.arch.l1fpu import (
    CONJOIN,
    CONV_TRIV,
    LOOKUP_TRIV,
    REDUCED_TRIV,
    mini_fpu,
)
from repro.arch.throughput import baseline_throughput, evaluate_config
from repro.arch.trace import OpProfile, PhaseWorkload


def workload(precision=5, conv=0.3, ext=0.5, fp_fraction=0.31):
    ops = {
        "add": OpProfile(0.45, conv, ext),
        "sub": OpProfile(0.05, conv, ext),
        "mul": OpProfile(0.45, conv, ext),
        "div": OpProfile(0.05, 0.05, 0.1),
    }
    return PhaseWorkload("lcp", precision, fp_fraction, ops)


class TestEnergyModel:
    def test_baseline_is_weighted_fpu_energy(self):
        wl = workload()
        expected = (0.45 * 0.40 + 0.05 * 0.40 + 0.45 * 0.55 + 0.05 * 2.0)
        assert baseline_energy(wl) == pytest.approx(expected)

    def test_conjoin_no_reduction(self):
        wl = workload()
        assert energy_reduction(wl, CONJOIN) == pytest.approx(0.0)

    def test_triv_logic_charged_to_all_ops(self):
        wl = workload(precision=10, conv=0.0, ext=0.0)
        breakdown = phase_energy(wl, REDUCED_TRIV)
        assert breakdown.trivialization_nj == pytest.approx(
            params.TRIV_LOGIC_ENERGY_NJ)

    def test_reduction_ordering(self):
        wl = workload(precision=5)
        conv = energy_reduction(wl, CONV_TRIV)
        reduced = energy_reduction(wl, REDUCED_TRIV)
        lookup = energy_reduction(wl, LOOKUP_TRIV)
        assert 0 < conv < reduced < lookup < 1

    def test_lookup_inactive_above_limit(self):
        wl = workload(precision=6)
        assert energy_reduction(wl, LOOKUP_TRIV) == pytest.approx(
            energy_reduction(wl, REDUCED_TRIV))

    def test_lookup_active_below_limit(self):
        wl = workload(precision=5)
        breakdown = phase_energy(wl, LOOKUP_TRIV)
        assert breakdown.lookup_nj > 0
        # only divides reach the FPU
        assert breakdown.fpu_nj == pytest.approx(
            0.05 * (1 - 0.1) * params.FPU_OP_ENERGY_NJ["div"])

    def test_mini_energy_discount(self):
        wl = workload(precision=10, conv=0.0, ext=0.0)
        mini = phase_energy(wl, mini_fpu(1))
        full = phase_energy(wl, REDUCED_TRIV)
        assert mini.total_nj < full.total_nj

    def test_trivialized_fraction_matches_rates(self):
        wl = workload(precision=10, conv=0.3, ext=0.5)
        frac = trivialized_fraction(wl, REDUCED_TRIV)
        expected = 0.95 * 0.5 + 0.05 * 0.1
        assert frac == pytest.approx(expected, abs=1e-6)

    def test_lookup_trivializes_everything_but_div(self):
        wl = workload(precision=5)
        frac = trivialized_fraction(wl, LOOKUP_TRIV)
        assert frac == pytest.approx(0.95 * 1.0 + 0.05 * 0.1, abs=1e-6)


class TestThroughput:
    def test_baseline_128_cores(self):
        wl = workload()
        base = baseline_throughput(wl, trace_length=4000)
        assert base > 128 * 0.3  # sane IPC range
        assert base < 128 * 1.0

    def test_conjoin_at_one_is_baseline(self):
        wl = workload()
        result = evaluate_config(wl, CONJOIN, 1.0, 1, trace_length=4000)
        assert result.improvement == pytest.approx(0.0, abs=1e-9)
        assert result.cores == 128

    def test_lookup_sharing_wins(self):
        wl = workload(precision=5)
        result = evaluate_config(wl, LOOKUP_TRIV, 1.5, 4,
                                 trace_length=4000)
        assert result.improvement > 0.2

    def test_conjoin_eight_way_loses_small_fpu(self):
        wl = workload(precision=23, conv=0.0, ext=0.0)
        result = evaluate_config(wl, CONJOIN, 0.375, 8, trace_length=4000)
        assert result.improvement < 0.0

    def test_reuses_supplied_baseline(self):
        wl = workload()
        base = baseline_throughput(wl, trace_length=4000)
        r1 = evaluate_config(wl, CONJOIN, 1.0, 2, trace_length=4000,
                             baseline=base)
        r2 = evaluate_config(wl, CONJOIN, 1.0, 2, trace_length=4000)
        assert r1.improvement == pytest.approx(r2.improvement)

    def test_improvement_percent(self):
        wl = workload()
        result = evaluate_config(wl, CONJOIN, 1.0, 2, trace_length=4000)
        assert result.improvement_percent == pytest.approx(
            100 * result.improvement)

    def test_interconnect_override_hurts(self):
        wl = workload(precision=23, conv=0.0, ext=0.0)
        nominal = evaluate_config(wl, CONJOIN, 1.0, 4, trace_length=4000)
        slowed = evaluate_config(wl, CONJOIN, 1.0, 4, trace_length=4000,
                                 interconnect=4)
        assert slowed.throughput < nominal.throughput
