"""Failure-injection tests: the system's behaviour when things go wrong."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.fp.rounding import FULL_PRECISION
from repro.physics import SolverParams, World
from repro.tuning import ControlledSimulation, PrecisionController


class TestNumericalAbuse:
    def test_extreme_mass_ratio_stays_finite(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.5, 0], [0.5, 0.5, 0.5], 1000.0)
        world.add_sphere([0, 1.3, 0], 0.3, 0.001)
        for _ in range(60):
            world.step()
        assert np.isfinite(world.bodies.pos[:2]).all()

    def test_deep_initial_penetration_resolves(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_sphere([0, -0.2, 0], 0.5, 1.0)  # buried in the ground
        for _ in range(150):
            world.step()
        assert world.bodies.pos[0, 1] > 0.3
        # bias clamping prevents a popcorn launch
        assert world.bodies.pos[0, 1] < 2.0

    def test_coincident_spheres_do_not_nan(self):
        world = World(ctx=FPContext(census=False))
        world.add_sphere([0, 1, 0], 0.3, 1.0)
        world.add_sphere([0, 1, 0], 0.3, 1.0)  # exactly coincident
        for _ in range(30):
            world.step()
        assert np.isfinite(world.bodies.pos[:2]).all()

    def test_one_bit_precision_does_not_crash(self):
        world = World(ctx=FPContext({"lcp": 1, "narrow": 1},
                                    census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.8, 0], [0.4, 0.4, 0.4], 2.0)
        for _ in range(40):
            world.step()  # results may be absurd; they must be defined

    def test_huge_velocity_capped_by_believability_check(self):
        from repro.tuning.believability import (
            BelievabilityCriteria,
            energy_trace,
        )
        # a criteria with a tiny max speed flags an ordinary scene
        criteria = BelievabilityCriteria(max_speed=0.001)
        trace = energy_trace("highspeed", steps=5, scale=0.4,
                             criteria=criteria)
        assert trace.blew_up

    def test_zero_sized_world_monitor(self):
        world = World(ctx=FPContext(census=False))
        record = world.monitor.measure(world, 0)
        assert record.total == 0.0


class TestControllerFailSafe:
    def _sim(self, register, **kwargs):
        ctx = FPContext()
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.2, 0], 0.3, 1.0)
        controller = PrecisionController(ctx, register, **kwargs)
        return world, controller, ControlledSimulation(world, controller)

    def test_snapshot_restore_roundtrip(self):
        world, controller, sim = self._sim({"lcp": 8})
        for _ in range(5):
            world.step()
        snapshot = sim._snapshot()
        pos_before = world.bodies.pos[:1].copy()
        world.step()
        world.monitor.measure(world, 99)  # extra record to pop
        sim._restore(snapshot)
        assert np.array_equal(world.bodies.pos[:1], pos_before)
        assert world.step_count == 5

    def test_reexecution_bounds_state(self):
        world, controller, sim = self._sim({"lcp": 1, "narrow": 1},
                                           blowup_threshold=0.5)
        sim.run(30)
        assert np.isfinite(world.bodies.pos[0]).all()
        assert len(world.monitor.records) == 30

    def test_violation_history_monotone_steps(self):
        world, controller, sim = self._sim({"lcp": 6, "narrow": 6})
        sim.run(10)
        steps = [log.step for log in controller.history]
        assert steps == sorted(steps)

    def test_controller_reaches_register_floor(self):
        world, controller, sim = self._sim({"lcp": 20, "narrow": 20})
        sim.run(20)
        # quiet scene: precision should sit at the floor by the end
        assert controller.current_precision("lcp") == 20


class TestDegenerateSolverInput:
    def test_all_static_scene(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.5, 0], [0.5, 0.5, 0.5], 0.0)  # static box
        for _ in range(10):
            world.step()
        assert world.last_contact_count >= 0  # plane/static filtered

    def test_zero_cfm_guarded_by_mass_splitting(self):
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(cfm=0.0))
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.4, 0], 0.5, 1.0)
        for _ in range(30):
            world.step()
        assert np.isfinite(world.bodies.linvel[0]).all()

    def test_contact_with_sleeping_neighbour(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(80):
            world.step()  # box falls asleep
        world.add_box([0, 1.6, 0], [0.5, 0.5, 0.5], 1.0)  # lands on it
        for _ in range(80):
            world.step()
        ys = world.bodies.pos[:2, 1]
        assert ys[1] > ys[0]  # stacked, not merged
        assert np.isfinite(ys).all()
