"""Failure-injection tests: the system's behaviour when things go wrong."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.fp.rounding import FULL_PRECISION
from repro.physics import SolverParams, World
from repro.robustness import (
    FaultInjector,
    GuardConfig,
    GuardedSimulation,
    PhaseGuards,
    RecoveryPolicy,
    SimulationAborted,
)
from repro.tuning import ControlledSimulation, PrecisionController


class TestNumericalAbuse:
    def test_extreme_mass_ratio_stays_finite(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.5, 0], [0.5, 0.5, 0.5], 1000.0)
        world.add_sphere([0, 1.3, 0], 0.3, 0.001)
        for _ in range(60):
            world.step()
        assert np.isfinite(world.bodies.pos[:2]).all()

    def test_deep_initial_penetration_resolves(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_sphere([0, -0.2, 0], 0.5, 1.0)  # buried in the ground
        for _ in range(150):
            world.step()
        assert world.bodies.pos[0, 1] > 0.3
        # bias clamping prevents a popcorn launch
        assert world.bodies.pos[0, 1] < 2.0

    def test_coincident_spheres_do_not_nan(self):
        world = World(ctx=FPContext(census=False))
        world.add_sphere([0, 1, 0], 0.3, 1.0)
        world.add_sphere([0, 1, 0], 0.3, 1.0)  # exactly coincident
        for _ in range(30):
            world.step()
        assert np.isfinite(world.bodies.pos[:2]).all()

    def test_one_bit_precision_does_not_crash(self):
        world = World(ctx=FPContext({"lcp": 1, "narrow": 1},
                                    census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.8, 0], [0.4, 0.4, 0.4], 2.0)
        for _ in range(40):
            world.step()  # results may be absurd; they must be defined

    def test_huge_velocity_capped_by_believability_check(self):
        from repro.tuning.believability import (
            BelievabilityCriteria,
            energy_trace,
        )
        # a criteria with a tiny max speed flags an ordinary scene
        criteria = BelievabilityCriteria(max_speed=0.001)
        trace = energy_trace("highspeed", steps=5, scale=0.4,
                             criteria=criteria)
        assert trace.blew_up

    def test_zero_sized_world_monitor(self):
        world = World(ctx=FPContext(census=False))
        record = world.monitor.measure(world, 0)
        assert record.total == 0.0


class TestControllerFailSafe:
    def _sim(self, register, **kwargs):
        ctx = FPContext()
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.2, 0], 0.3, 1.0)
        controller = PrecisionController(ctx, register, **kwargs)
        return world, controller, ControlledSimulation(world, controller)

    def test_snapshot_restore_roundtrip(self):
        world, controller, sim = self._sim({"lcp": 8})
        for _ in range(5):
            world.step()
        snapshot = sim._snapshot()
        pos_before = world.bodies.pos[:1].copy()
        world.step()
        world.monitor.measure(world, 99)  # extra record to pop
        sim._restore(snapshot)
        assert np.array_equal(world.bodies.pos[:1], pos_before)
        assert world.step_count == 5

    def test_reexecution_bounds_state(self):
        world, controller, sim = self._sim({"lcp": 1, "narrow": 1},
                                           blowup_threshold=0.5)
        sim.run(30)
        assert np.isfinite(world.bodies.pos[0]).all()
        assert len(world.monitor.records) == 30

    def test_violation_history_monotone_steps(self):
        world, controller, sim = self._sim({"lcp": 6, "narrow": 6})
        sim.run(10)
        steps = [log.step for log in controller.history]
        assert steps == sorted(steps)

    def test_controller_reaches_register_floor(self):
        world, controller, sim = self._sim({"lcp": 20, "narrow": 20})
        sim.run(20)
        # quiet scene: precision should sit at the floor by the end
        assert controller.current_precision("lcp") == 20


class TestGuardedRecovery:
    """Recovery-path coverage for the robustness escalation ladder."""

    def _resting_world(self, phase_precision=None):
        ctx = FPContext(dict(phase_precision or {}), census=False)
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.3, 0], 0.3, 1.0)  # resting contact
        world.add_sphere([1.2, 0.3, 0], 0.3, 1.0)
        return world

    def test_injected_nan_in_narrowphase_triggers_retry(self):
        world = self._resting_world({"narrow": 10})
        injector = FaultInjector(rate={"narrow": 0.02}, seed=11,
                                 kind_weights={"nan": 1.0})
        sim = GuardedSimulation(world, injector=injector)
        sim.run(25)

        assert injector.injected > 0
        assert sim.detections > 0
        retries = [r for r in sim.log.records
                   if r.action == "retry-full-precision"
                   and r.outcome == "recovered"]
        assert retries, "NaN faults must be healed by full-precision retry"
        n = world.bodies.count
        assert np.isfinite(world.bodies.pos[:n]).all()
        assert np.isfinite(world.bodies.linvel[:n]).all()
        # the retry re-executed the faulted step; the step stream is gapless
        assert len(world.monitor.records) == 25

    def test_repeated_island_blowup_quarantines_only_that_island(self):
        world = self._resting_world()
        runaway = world.add_sphere([6.0, 2.0, 0], 0.3, 1.0,
                                   linvel=[5.0, 0.0, 0.0])
        # A ceiling the runaway body violates even at full precision, so
        # rungs 0/1 cannot help and the ladder must escalate to rung 2.
        guards = PhaseGuards(GuardConfig(max_speed=1.0))
        sim = GuardedSimulation(
            world, guards=guards,
            policy=RecoveryPolicy(max_retries=1, rollback_depth=1))
        sim.run(10)

        assert world.quarantined == {runaway}
        quarantines = [r for r in sim.log.records
                       if r.action == "quarantine-island"
                       and r.outcome == "recovered"]
        assert quarantines
        # the healthy resting island keeps simulating, un-quarantined
        assert not world.bodies.asleep[0] or 0 not in world.quarantined
        assert world.step_count == 10
        report = sim.health_report("two-islands")
        assert report.status == "DEGRADED"
        assert report.quarantined_bodies == 1

    def test_escalation_ladder_terminates(self):
        world = self._resting_world()
        # An unsatisfiable invariant: every step "violates", with no
        # offending bodies to attribute, so quarantine cannot apply and
        # the ladder must reach the abort rung in bounded attempts.
        guards = PhaseGuards(GuardConfig(max_energy_delta=-1.0))
        policy = RecoveryPolicy(max_retries=2, rollback_depth=2)
        sim = GuardedSimulation(world, guards=guards, policy=policy)
        with pytest.raises(SimulationAborted) as excinfo:
            sim.run(50)
        # bounded: initial attempts + retries + rollback replays, not 50
        assert sim.step_attempts <= 12
        assert sim.aborted
        assert sim.log.records[-1].outcome == "aborted"
        assert "Incident history" in excinfo.value.post_mortem()

    def test_same_seed_produces_identical_incident_logs(self):
        def campaign():
            world = self._resting_world({"narrow": 10, "lcp": 8})
            injector = FaultInjector(rate=5e-3, seed=23)
            sim = GuardedSimulation(world, injector=injector)
            sim.run(30)
            return sim.log.lines(), list(injector.events)

        lines_a, events_a = campaign()
        lines_b, events_b = campaign()
        assert lines_a == lines_b
        assert events_a == events_b
        assert events_a, "campaign must actually inject faults"

    def test_backoff_suspends_injection_after_recovery(self):
        world = self._resting_world({"narrow": 10})
        injector = FaultInjector(rate={"narrow": 0.05}, seed=3,
                                 kind_weights={"nan": 1.0})
        policy = RecoveryPolicy(backoff_steps=4)
        sim = GuardedSimulation(world, injector=injector, policy=policy)
        sim.run(20)
        assert sim.recoveries > 0
        # recovered steps plus their cool-down windows run fault-free, so
        # fewer steps carry faults than were simulated
        faulted_steps = {e.step for e in injector.events}
        assert len(faulted_steps) < 20


class TestDegenerateSolverInput:
    def test_all_static_scene(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.5, 0], [0.5, 0.5, 0.5], 0.0)  # static box
        for _ in range(10):
            world.step()
        assert world.last_contact_count >= 0  # plane/static filtered

    def test_zero_cfm_guarded_by_mass_splitting(self):
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(cfm=0.0))
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.4, 0], 0.5, 1.0)
        for _ in range(30):
            world.step()
        assert np.isfinite(world.bodies.linvel[0]).all()

    def test_contact_with_sleeping_neighbour(self):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.499, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(80):
            world.step()  # box falls asleep
        world.add_box([0, 1.6, 0], [0.5, 0.5, 0.5], 1.0)  # lands on it
        for _ in range(80):
            world.step()
        ys = world.bodies.pos[:2, 1]
        assert ys[1] > ys[0]  # stacked, not merged
        assert np.isfinite(ys).all()
