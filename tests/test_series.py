"""Tests for :class:`repro.physics.series.BoundedSeries` and its
integration points — ``World.penetration_series``,
``EnergyMonitor.records``, and checkpoint truncation — which bound the
former always-growing per-step lists without changing short-run
semantics."""

import pytest

from repro.physics.series import BoundedSeries, DEFAULT_SERIES_WINDOW
from repro.robustness.checkpoint import capture_world, restore_world
from repro.workloads import build


class TestBoundedSeriesListParity:
    """Within the window the series must behave exactly like a list."""

    def _pair(self, n=20, window=DEFAULT_SERIES_WINDOW):
        series = BoundedSeries(window=window, track_max=True)
        reference = []
        for i in range(n):
            value = float((i * 7) % 13)
            series.append(value)
            reference.append(value)
        return series, reference

    def test_len_iter_and_indexing(self):
        series, reference = self._pair()
        assert len(series) == len(reference)
        assert list(series) == reference
        assert series[0] == reference[0]
        assert series[-1] == reference[-1]
        assert series[7] == reference[7]

    def test_slicing(self):
        series, reference = self._pair()
        assert series[5:] == reference[5:]
        assert series[3:12] == reference[3:12]
        assert series[60:] == reference[60:] == []

    def test_max_matches_builtin(self):
        series, reference = self._pair()
        assert series.maximum() == max(reference)

    def test_del_tail_matches_list(self):
        series, reference = self._pair()
        del series[12:]
        del reference[12:]
        assert list(series) == reference
        assert series.maximum() == max(reference)

    def test_empty_series(self):
        series = BoundedSeries(track_max=True)
        assert len(series) == 0
        assert not series
        assert series.maximum(default=0.0) == 0.0
        assert series[3:] == []


class TestBoundedSeriesEviction:
    def test_memory_is_bounded_but_length_is_logical(self):
        series = BoundedSeries(window=8)
        for i in range(100):
            series.append(i)
        assert len(series) == 100
        assert series.evicted == 92
        assert list(series) == list(range(92, 100))
        assert series[-1] == 99
        assert series[92] == 92

    def test_evicted_index_raises(self):
        series = BoundedSeries(window=8)
        for i in range(100):
            series.append(i)
        with pytest.raises(IndexError):
            series[0]

    def test_running_max_survives_eviction(self):
        series = BoundedSeries(window=4, track_max=True)
        series.append(9.0)          # the peak, soon evicted
        for _ in range(20):
            series.append(1.0)
        assert series.evicted > 0
        assert series.maximum() == 9.0

    def test_truncate_below_evicted_raises(self):
        series = BoundedSeries(window=4)
        for i in range(10):
            series.append(i)
        with pytest.raises(ValueError):
            series.truncate(2)

    def test_truncate_within_window_after_eviction(self):
        series = BoundedSeries(window=8)
        for i in range(20):
            series.append(i)
        series.truncate(16)
        assert len(series) == 16
        assert list(series) == [12, 13, 14, 15]

    def test_truncate_without_eviction_recomputes_exact_max(self):
        series = BoundedSeries(track_max=True)
        for value in (1.0, 8.0, 2.0):
            series.append(value)
        series.truncate(1)
        # A list would forget the discarded 8.0; so must we.
        assert series.maximum() == 1.0
        series.truncate(0)
        assert series.maximum(default=-1.0) == -1.0


class TestWorldIntegration:
    def test_world_series_are_bounded_types(self):
        world = build("continuous", scale=0.3)
        assert isinstance(world.penetration_series, BoundedSeries)
        assert isinstance(world.monitor.records, BoundedSeries)

    def test_checkpoint_restore_truncates_series(self):
        world = build("continuous", scale=0.3, seed=3)
        for _ in range(10):
            world.step()
        checkpoint = capture_world(world)
        pen_len = len(world.penetration_series)
        rec_len = len(world.monitor.records)
        tail = list(world.penetration_series)
        for _ in range(6):
            world.step()
        restore_world(world, checkpoint)
        assert len(world.penetration_series) == pen_len
        assert len(world.monitor.records) == rec_len
        assert list(world.penetration_series) == tail

    def test_peak_penetration_forgets_rolled_back_samples(self):
        world = build("continuous", scale=0.3, seed=3)
        for _ in range(5):
            world.step()
        checkpoint = capture_world(world)
        max_before = world.penetration_series.maximum(default=0.0)
        for _ in range(10):
            world.step()
        restore_world(world, checkpoint)
        assert world.penetration_series.maximum(default=0.0) \
            == max_before

    def test_monitor_records_keep_consumer_access_patterns(self):
        world = build("continuous", scale=0.3, seed=3)
        for _ in range(4):
            world.step()
        records = world.monitor.records
        assert records[-1].total == list(records)[-1].total
        assert records[0].total == list(records)[0].total
        assert len([r.total for r in records]) == len(records)
