"""Tests for body storage, shapes and the broad phase."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import broadphase
from repro.physics.body import BodyStore
from repro.physics.shapes import (
    GeomStore,
    ShapeType,
    box_inertia,
    sphere_inertia,
)


class TestBodyStore:
    def test_add_dynamic_body(self):
        store = BodyStore()
        i = store.add_body([1, 2, 3], 2.0, [0.1, 0.1, 0.1])
        assert i == 0
        assert store.mass[0] == 2.0
        assert store.invmass[0] == 0.5
        assert store.pos[0].tolist() == [1.0, 2.0, 3.0]

    def test_add_static_body(self):
        store = BodyStore()
        i = store.add_body([0, 0, 0], 0.0, [0, 0, 0])
        assert store.invmass[i] == 0.0
        assert not store.dynamic_mask()[i]

    def test_world_index_tracks_count(self):
        store = BodyStore()
        store.add_body([0, 0, 0], 1.0, [1, 1, 1])
        assert store.world_index == 1
        store.add_body([0, 0, 0], 1.0, [1, 1, 1])
        assert store.world_index == 2

    def test_growth_preserves_state(self):
        store = BodyStore(capacity=2)
        for k in range(40):
            store.add_body([k, 0, 0], 1.0, [1, 1, 1])
        assert store.count == 40
        assert store.pos[17, 0] == 17.0

    def test_world_row_is_inert(self):
        store = BodyStore()
        store.add_body([0, 5, 0], 1.0, [1, 1, 1], linvel=[1, 0, 0])
        store.refresh_derived(FPContext(census=False))
        w = store.world_index
        assert store.invmass[w] == 0.0
        assert np.all(store.linvel[w] == 0.0)
        assert np.all(store.inv_inertia_world[w] == 0.0)

    def test_refresh_derived_identity_rotation(self):
        store = BodyStore()
        store.add_body([0, 0, 0], 2.0, [0.4, 0.4, 0.4])
        store.refresh_derived(FPContext(census=False))
        assert np.allclose(store.rot[0], np.eye(3))
        assert np.allclose(store.inv_inertia_world[0],
                           np.eye(3) * 2.5, atol=1e-5)

    def test_refresh_derived_rotated_inertia(self):
        store = BodyStore()
        # 90 degrees about z swaps the x/y inertia terms.
        angle = np.pi / 2
        quat = [np.cos(angle / 2), 0.0, 0.0, np.sin(angle / 2)]
        store.add_body([0, 0, 0], 1.0, [1.0, 4.0, 8.0], quat=quat)
        store.refresh_derived(FPContext(census=False))
        diag = np.diag(store.inv_inertia_world[0])
        assert diag[0] == pytest.approx(0.25, abs=1e-4)
        assert diag[1] == pytest.approx(1.0, abs=1e-4)
        assert diag[2] == pytest.approx(0.125, abs=1e-4)


class TestInertia:
    def test_sphere_inertia(self):
        inertia = sphere_inertia(5.0, 2.0)
        assert np.allclose(inertia, 0.4 * 5.0 * 4.0)

    def test_box_inertia_cube_symmetric(self):
        inertia = box_inertia(3.0, [0.5, 0.5, 0.5])
        assert inertia[0] == inertia[1] == inertia[2]

    def test_box_inertia_slab(self):
        inertia = box_inertia(1.0, [1.0, 0.1, 0.1])
        # long axis has the smallest moment
        assert inertia[0] < inertia[1]
        assert inertia[0] < inertia[2]


class TestGeomStore:
    def test_add_shapes(self):
        geoms = GeomStore()
        s = geoms.add_sphere(0, 0.5)
        b = geoms.add_box(1, [1, 2, 3])
        p = geoms.add_plane([0, 1, 0], 0.0)
        assert geoms[s].shape is ShapeType.SPHERE
        assert geoms[b].shape is ShapeType.BOX
        assert geoms[p].shape is ShapeType.PLANE
        assert geoms[p].body == -1
        assert len(geoms) == 3

    def test_plane_normal_normalized(self):
        geoms = GeomStore()
        p = geoms.add_plane([0, 2, 0], 1.0)
        assert np.allclose(geoms[p].params, [0, 1, 0])

    def test_sphere_aabb(self):
        geoms = GeomStore()
        geoms.add_sphere(0, 0.5)
        pos = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        rot = np.eye(3, dtype=np.float32)[None]
        aabbs = geoms.world_aabbs(pos, rot)
        assert np.allclose(aabbs[0, 0], [0.5, 1.5, 2.5])
        assert np.allclose(aabbs[0, 1], [1.5, 2.5, 3.5])

    def test_rotated_box_aabb_grows(self):
        geoms = GeomStore()
        geoms.add_box(0, [1.0, 1.0, 1.0])
        pos = np.zeros((1, 3), dtype=np.float32)
        angle = np.pi / 4
        rot = np.array([[[np.cos(angle), -np.sin(angle), 0],
                         [np.sin(angle), np.cos(angle), 0],
                         [0, 0, 1]]], dtype=np.float32)
        aabbs = geoms.world_aabbs(pos, rot)
        assert aabbs[0, 1, 0] == pytest.approx(np.sqrt(2), abs=1e-5)

    def test_plane_aabb_infinite(self):
        geoms = GeomStore()
        geoms.add_plane([0, 1, 0], 0.0)
        aabbs = geoms.world_aabbs(np.zeros((1, 3), np.float32),
                                  np.eye(3, dtype=np.float32)[None])
        assert np.all(np.isinf(aabbs[0, 0]))


class TestBroadphase:
    def _setup(self, positions, radius=0.5):
        geoms = GeomStore()
        pos = np.array(positions, dtype=np.float32)
        for k in range(len(positions)):
            geoms.add_sphere(k, radius)
        rot = np.tile(np.eye(3, dtype=np.float32), (len(positions), 1, 1))
        aabbs = geoms.world_aabbs(pos, rot)
        return geoms, aabbs

    def test_overlapping_pair_found(self):
        geoms, aabbs = self._setup([[0, 0, 0], [0.6, 0, 0]])
        assert broadphase.candidate_pairs(geoms, aabbs) == [(0, 1)]

    def test_distant_pair_pruned(self):
        geoms, aabbs = self._setup([[0, 0, 0], [5, 0, 0]])
        assert broadphase.candidate_pairs(geoms, aabbs) == []

    def test_same_body_excluded(self):
        geoms = GeomStore()
        geoms.add_sphere(0, 0.5)
        geoms.add_box(0, [0.5, 0.5, 0.5])
        pos = np.zeros((1, 3), dtype=np.float32)
        rot = np.eye(3, dtype=np.float32)[None]
        aabbs = geoms.world_aabbs(pos, rot)
        assert broadphase.candidate_pairs(geoms, aabbs) == []

    def test_two_planes_excluded(self):
        geoms = GeomStore()
        geoms.add_plane([0, 1, 0], 0.0)
        geoms.add_plane([1, 0, 0], 0.0)
        aabbs = geoms.world_aabbs(np.zeros((1, 3), np.float32),
                                  np.eye(3, dtype=np.float32)[None])
        assert broadphase.candidate_pairs(geoms, aabbs) == []

    def test_plane_sphere_pair_found(self):
        geoms = GeomStore()
        geoms.add_plane([0, 1, 0], 0.0)
        geoms.add_sphere(0, 0.5)
        pos = np.array([[0.0, 0.3, 0.0]], dtype=np.float32)
        rot = np.eye(3, dtype=np.float32)[None]
        aabbs = geoms.world_aabbs(pos, rot)
        assert broadphase.candidate_pairs(geoms, aabbs) == [(0, 1)]

    def test_touching_aabbs_count(self):
        geoms, aabbs = self._setup([[0, 0, 0], [1.0, 0, 0]])
        # AABBs touch exactly (0.5 + 0.5): inclusive overlap
        assert broadphase.candidate_pairs(geoms, aabbs) == [(0, 1)]


class TestPairEligibilityCache:
    """The cached body/static eligibility matrix on GeomStore."""

    def _store(self):
        geoms = GeomStore()
        geoms.add_plane([0, 1, 0], 0.0)
        geoms.add_sphere(0, 0.5)
        geoms.add_sphere(1, 0.5)
        geoms.add_box(1, [0.5, 0.5, 0.5])
        return geoms

    def test_cache_reused_between_calls(self):
        geoms = self._store()
        first = geoms.pair_eligibility()
        assert geoms.pair_eligibility() is first

    def test_cache_invalidated_on_add(self):
        geoms = self._store()
        stale = geoms.pair_eligibility()
        geoms.add_sphere(2, 0.25)
        fresh = geoms.pair_eligibility()
        assert fresh is not stale
        assert fresh.shape == (5, 5)

    def test_cache_invalidated_on_remove(self):
        geoms = self._store()
        geoms.pair_eligibility()
        removed = geoms.remove(3)
        assert removed.body == 1
        assert geoms.pair_eligibility().shape == (3, 3)

    def test_matrix_matches_exclusion_rules(self):
        geoms = self._store()
        eligible = geoms.pair_eligibility()
        assert not eligible[0, 0]            # both static (same plane)
        assert not eligible[2, 3]            # same body
        assert eligible[0, 1] and eligible[1, 2]
        assert np.array_equal(eligible, eligible.T)

    def test_candidate_pairs_identical_with_cold_and_warm_cache(self):
        geoms = self._store()
        pos = np.array([[0, 0.4, 0], [0.6, 0.4, 0]], dtype=np.float32)
        rot = np.tile(np.eye(3, dtype=np.float32), (2, 1, 1))
        aabbs = geoms.world_aabbs(pos, rot)
        cold = broadphase.candidate_pairs(geoms, aabbs)
        warm = broadphase.candidate_pairs(geoms, aabbs)
        assert cold == warm
        assert (0, 1) in cold and (2, 3) not in cold
