"""Tests for L1 FPU designs, trace generation and the cycle simulator."""

import numpy as np
import pytest

from repro.arch import params
from repro.arch.core import analytic_cpi, cluster_ipc, simulate_core
from repro.arch.l1fpu import (
    CONJOIN,
    CONV_TRIV,
    LOOKUP_TRIV,
    REDUCED_TRIV,
    SERVICE_L1,
    SERVICE_L2,
    SERVICE_MINI,
    mini_fpu,
)
from repro.arch.trace import OpProfile, PhaseWorkload, Trace, generate_trace


def workload(precision=5, fp_fraction=0.31, conv=0.3, ext=0.5):
    ops = {
        "add": OpProfile(0.45, conv, ext),
        "sub": OpProfile(0.05, conv, ext),
        "mul": OpProfile(0.45, conv, ext),
        "div": OpProfile(0.05, 0.05, 0.1),
    }
    return PhaseWorkload("lcp", precision, fp_fraction, ops)


class TestL1DesignService:
    def test_conjoin_everything_l2(self):
        assert CONJOIN.service("add", 5, True, True) == SERVICE_L2

    def test_conv_uses_conventional_flag(self):
        assert CONV_TRIV.service("add", 5, True, False) == SERVICE_L1
        assert CONV_TRIV.service("add", 5, False, True) == SERVICE_L2

    def test_reduced_uses_extended_flag(self):
        assert REDUCED_TRIV.service("add", 5, False, True) == SERVICE_L1
        assert REDUCED_TRIV.service("add", 5, False, False) == SERVICE_L2

    def test_lookup_catches_low_precision(self):
        assert LOOKUP_TRIV.service("mul", 5, False, False) == SERVICE_L1
        assert LOOKUP_TRIV.service("mul", 6, False, False) == SERVICE_L2

    def test_lookup_never_serves_div(self):
        assert LOOKUP_TRIV.service("div", 5, False, False) == SERVICE_L2

    def test_mini_covers_14_bits(self):
        design = mini_fpu(1)
        assert design.service("add", 14, False, False) == SERVICE_MINI
        assert design.service("add", 15, False, False) == SERVICE_L2

    def test_mini_trivializes_first(self):
        assert mini_fpu(1).service("add", 14, False, True) == SERVICE_L1

    def test_l1_rate_lookup_full_coverage(self):
        assert LOOKUP_TRIV.l1_rate("add", 5, 0.2, 0.4) == 1.0
        assert LOOKUP_TRIV.l1_rate("add", 6, 0.2, 0.4) == 0.4

    def test_mini_rate_complements_l1(self):
        rate = mini_fpu(1).mini_rate("add", 10, 0.2, 0.4)
        assert rate == pytest.approx(0.6)
        assert mini_fpu(1).mini_rate("div", 10, 0.2, 0.4) == 0.0

    def test_invalid_mini_sharing(self):
        with pytest.raises(ValueError):
            mini_fpu(3)


class TestTraceGeneration:
    def test_length_and_determinism(self):
        wl = workload()
        t1 = generate_trace(wl, 5000, seed=7)
        t2 = generate_trace(wl, 5000, seed=7)
        assert len(t1) == 5000
        assert np.array_equal(t1.op_index, t2.op_index)
        assert np.array_equal(t1.ext_trivial, t2.ext_trivial)

    def test_fp_fraction_respected(self):
        wl = workload(fp_fraction=0.31)
        trace = generate_trace(wl, 40000, seed=0)
        assert trace.fp_count / len(trace) == pytest.approx(0.31, abs=0.02)

    def test_op_mix_respected(self):
        wl = workload()
        trace = generate_trace(wl, 40000, seed=0)
        fp = trace.op_index[trace.op_index >= 0]
        add_share = float((fp == 0).sum() / len(fp))
        assert add_share == pytest.approx(0.45, abs=0.03)

    def test_extended_superset_of_conventional(self):
        wl = workload(conv=0.3, ext=0.5)
        trace = generate_trace(wl, 20000, seed=1)
        assert not np.any(trace.conv_trivial & ~trace.ext_trivial)

    def test_trivial_rates_respected(self):
        wl = workload(conv=0.3, ext=0.5)
        trace = generate_trace(wl, 50000, seed=2)
        adds = trace.op_index == 0
        conv_rate = trace.conv_trivial[adds].mean()
        ext_rate = trace.ext_trivial[adds].mean()
        assert conv_rate == pytest.approx(0.3, abs=0.02)
        assert ext_rate == pytest.approx(0.5, abs=0.02)

    def test_empty_op_mix_fallback(self):
        ops = {op: OpProfile(0.0, 0.0, 0.0)
               for op in ("add", "sub", "mul", "div")}
        wl = PhaseWorkload("lcp", 10, 0.3, ops)
        trace = generate_trace(wl, 1000, seed=0)
        assert trace.fp_count > 0


class TestCycleSimulator:
    def test_all_int_trace_is_ipc_one(self):
        wl = workload(fp_fraction=0.0)
        trace = generate_trace(wl, 1000, seed=0)
        result = simulate_core(trace, CONJOIN, 1)
        assert result.ipc == 1.0

    def test_private_fpu_cost(self):
        # All-FP trace, no trivialization: every op costs fpALU latency.
        ops = {"add": OpProfile(1.0, 0.0, 0.0),
               "sub": OpProfile(0.0, 0.0, 0.0),
               "mul": OpProfile(0.0, 0.0, 0.0),
               "div": OpProfile(0.0, 0.0, 0.0)}
        wl = PhaseWorkload("lcp", 23, 1.0, ops)
        trace = generate_trace(wl, 500, seed=0)
        result = simulate_core(trace, CONJOIN, 1)
        assert result.cycles == 500 * params.CORE.fp_alu_latency

    def test_sharing_lowers_ipc(self):
        wl = workload(precision=23, ext=0.0, conv=0.0)
        trace = generate_trace(wl, 8000, seed=0)
        ipcs = [cluster_ipc(trace, CONJOIN, n) for n in (1, 2, 4, 8)]
        assert ipcs == sorted(ipcs, reverse=True)

    def test_trivialization_raises_ipc(self):
        wl = workload(precision=10)
        trace = generate_trace(wl, 8000, seed=0)
        assert cluster_ipc(trace, REDUCED_TRIV, 4) > \
            cluster_ipc(trace, CONJOIN, 4)

    def test_design_ordering_at_low_precision(self):
        wl = workload(precision=5)
        trace = generate_trace(wl, 8000, seed=0)
        conjoin = cluster_ipc(trace, CONJOIN, 4)
        conv = cluster_ipc(trace, CONV_TRIV, 4)
        reduced = cluster_ipc(trace, REDUCED_TRIV, 4)
        lookup = cluster_ipc(trace, LOOKUP_TRIV, 4)
        assert conjoin < conv < reduced < lookup

    def test_interconnect_override(self):
        wl = workload(precision=23, ext=0.0, conv=0.0)
        trace = generate_trace(wl, 8000, seed=0)
        fast = cluster_ipc(trace, CONJOIN, 4, interconnect=0)
        slow = cluster_ipc(trace, CONJOIN, 4, interconnect=4)
        assert fast > slow

    def test_counts_partition(self):
        wl = workload(precision=10)
        trace = generate_trace(wl, 4000, seed=0)
        result = simulate_core(trace, mini_fpu(1), 4)
        assert result.l1_satisfied + result.mini_satisfied + \
            result.l2_ops == result.fp_ops

    def test_mini_beats_l2_latency(self):
        wl = workload(precision=10, conv=0.0, ext=0.0)
        trace = generate_trace(wl, 8000, seed=0)
        assert cluster_ipc(trace, mini_fpu(1), 4) > \
            cluster_ipc(trace, REDUCED_TRIV, 4)

    def test_shared_mini_slower_than_private(self):
        wl = workload(precision=10, conv=0.0, ext=0.0)
        trace = generate_trace(wl, 8000, seed=0)
        assert cluster_ipc(trace, mini_fpu(1), 4) >= \
            cluster_ipc(trace, mini_fpu(4), 4)


class TestAnalyticModel:
    @pytest.mark.parametrize("design", [CONJOIN, CONV_TRIV, REDUCED_TRIV,
                                        LOOKUP_TRIV, mini_fpu(1)])
    @pytest.mark.parametrize("sharing", [1, 2, 4, 8])
    def test_matches_cycle_simulation(self, design, sharing):
        wl = workload(precision=5)
        trace = generate_trace(wl, 30000, seed=3)
        simulated = 1.0 / cluster_ipc(trace, design, sharing)
        analytic = analytic_cpi(wl, design, sharing)
        # The analytic model assumes uniform arrival phases; wide sharing
        # correlates arrivals with slots, so the tolerance widens with N.
        assert simulated == pytest.approx(analytic,
                                          rel=max(0.06, 0.025 * sharing))

    def test_baseline_cpi_formula(self):
        # (1-f) + f * 4 with no trivialization on a private FPU
        wl = workload(precision=23, conv=0.0, ext=0.0, fp_fraction=0.31)
        wl.ops["div"] = OpProfile(0.0, 0.0, 0.0)
        cpi = analytic_cpi(wl, CONJOIN, 1)
        # div share was zeroed but shares don't renormalize; allow slack
        assert cpi == pytest.approx(0.69 + 0.31 * 4.0, rel=0.06)
