"""Tests for the gateway + worker-shard topology (``repro.serve.shard``).

Covers the consistent-hash ring (determinism, spread, minimal
remapping), gateway routing and error forwarding over real shard
subprocesses, live migration under concurrent load (the migrated
session's next steps must stay bit-identical to an unmigrated
control), ``drain_shard``/``rebalance``, and journal-based recovery of
a SIGKILLed shard onto the survivors.

The gateway fixture is module-scoped: spawning shard subprocesses
re-imports numpy per shard, so one 2-shard topology serves the whole
module (the crash test runs last and restores the topology it
perturbs).
"""

import threading
import time

import pytest

from repro.serve import (
    Client,
    GatewayConfig,
    RetryPolicy,
    ServeClientError,
    ServiceConfig,
    start_gateway_in_thread,
    start_in_thread,
)
from repro.serve.shard.ring import HashRing, stable_hash

SCENARIO = "continuous"
OPTS = dict(scale=0.3, seed=11)


# ----------------------------------------------------------------------
# Consistent hashing
# ----------------------------------------------------------------------
class TestHashRing:
    def test_stable_hash_is_process_independent(self):
        # Pinned: placement must survive restarts and cross processes
        # (builtin hash() is salted per process).
        assert stable_hash("g1") == 4907432730037124645

    def test_lookup_deterministic_across_instances(self):
        a, b = HashRing(range(4)), HashRing([3, 1, 0, 2])
        for i in range(100):
            assert a.lookup(f"g{i}") == b.lookup(f"g{i}")

    def test_every_shard_gets_keys(self):
        ring = HashRing(range(4))
        counts = ring.distribution([f"g{i}" for i in range(200)])
        assert set(counts) == {0, 1, 2, 3}
        assert all(count > 0 for count in counts.values())

    def test_removal_only_remaps_the_removed_shards_keys(self):
        ring = HashRing(range(4))
        keys = [f"g{i}" for i in range(200)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(2)
        for key in keys:
            after = ring.lookup(key)
            if before[key] != 2:
                assert after == before[key]
            else:
                assert after != 2

    def test_add_restores_original_placement(self):
        ring = HashRing(range(4))
        keys = [f"g{i}" for i in range(100)]
        before = {key: ring.lookup(key) for key in keys}
        ring.remove(1)
        ring.add(1)
        assert {key: ring.lookup(key) for key in keys} == before

    def test_empty_ring_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup("g1")


# ----------------------------------------------------------------------
# Gateway over real shard subprocesses
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def gateway():
    handle = start_gateway_in_thread(GatewayConfig(
        port=0, shards=2, max_sessions=16,
        batch_window=0.001, journal_every=1, health_interval=0.2))
    yield handle
    handle.stop()


def _create(client: Client, **overrides) -> str:
    options = dict(OPTS)
    options.update(overrides)
    return client.create(SCENARIO, **options)


class TestGatewayRouting:
    def test_sessions_get_gateway_ids_and_ring_placement(self, gateway):
        with gateway.connect() as client:
            sids = [_create(client) for _ in range(4)]
            assert all(sid.startswith("g") for sid in sids)
            routes = client.request({"op": "topology"})["routes"]
            ring = HashRing(range(2))
            for sid in sids:
                assert routes[sid] == ring.lookup(sid)
            for sid in sids:
                client.close_session(sid)

    def test_same_config_sessions_step_identically_across_shards(
            self, gateway):
        with gateway.connect() as client:
            a, b = _create(client), _create(client)
            routes = client.request({"op": "topology"})["routes"]
            if routes[a] == routes[b]:
                # Force the pair onto different shards.
                client.request({"op": "migrate", "session": b,
                                "target": 1 - routes[a]})
                routes = client.request({"op": "topology"})["routes"]
            assert routes[a] != routes[b]
            assert (client.step(a, 10)["digest"]
                    == client.step(b, 10)["digest"])
            client.close_session(a)
            client.close_session(b)

    def test_step_counts_per_session_are_independent(self, gateway):
        with gateway.connect() as client:
            a, b = _create(client), _create(client)
            client.step(a, 3)
            assert client.step(a, 0)["step"] == 3
            assert client.step(b, 0)["step"] == 0
            client.close_session(a)
            client.close_session(b)

    def test_ping_and_topology_shapes(self, gateway):
        with gateway.connect() as client:
            ping = client.ping()
            assert ping["server"] == "repro-serve-gateway"
            assert ping["shards"] == 2
            topology = client.request({"op": "topology"})
            assert [s["shard"] for s in topology["shards"]] == [0, 1]
            assert all(s["alive"] for s in topology["shards"])

    def test_stats_fans_out_over_shards(self, gateway):
        with gateway.connect() as client:
            sid = _create(client)
            stats = client.stats()
            assert set(stats["shards"]) == {"0", "1"}
            assert any(s.get("active_sessions", 0) >= 1
                       for s in stats["shards"].values())
            assert stats["active_sessions"] >= 1
            client.close_session(sid)


class TestGatewayErrorForwarding:
    def test_unknown_session_code_forwarded(self, gateway):
        with gateway.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.step("g999999", 1)
            assert excinfo.value.code == "unknown_session"

    def test_bad_scenario_detail_forwarded_from_shard(self, gateway):
        with gateway.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.create("no_such_scenario", scale=0.3)
            assert excinfo.value.code == "bad_request"
            # The shard's scenario list survives the forwarding hop.
            assert "valid scenarios" in str(excinfo.value)

    def test_migrate_unknown_session(self, gateway):
        with gateway.connect() as client:
            with pytest.raises(ServeClientError) as excinfo:
                client.request({"op": "migrate", "session": "g424242"})
            assert excinfo.value.code == "unknown_session"

    def test_migrate_to_invalid_shard(self, gateway):
        with gateway.connect() as client:
            sid = _create(client)
            with pytest.raises(ServeClientError) as excinfo:
                client.request({"op": "migrate", "session": sid,
                                "target": 9})
            assert excinfo.value.code == "bad_request"
            client.close_session(sid)

    def test_shard_down_is_a_client_retry_code(self):
        assert "shard_down" in RetryPolicy().retry_codes

    def test_plain_server_refuses_gateway_ops(self):
        handle = start_in_thread(ServiceConfig(port=0, max_sessions=4))
        try:
            with handle.connect() as client:
                for frame in ({"op": "topology"},
                              {"op": "rebalance"},
                              {"op": "drain_shard", "shard": 0},
                              {"op": "migrate", "session": "s1"}):
                    with pytest.raises(ServeClientError) as excinfo:
                        client.request(frame)
                    assert excinfo.value.code == "bad_request"
                    assert "gateway" in str(excinfo.value)
        finally:
            handle.stop()


class TestLiveMigration:
    def test_migrate_under_load_stays_bit_identical(self, gateway):
        """The ISSUE's gate: drain -> snapshot -> restore -> repoint,
        then 20 further steps identical to an unmigrated control."""
        with gateway.connect() as client:
            mig = _create(client, seed=77)
            ctrl = _create(client, seed=77)
            noise_stop = threading.Event()

            def _noise():
                with gateway.connect() as other:
                    sid = _create(other, seed=5)
                    while not noise_stop.is_set():
                        other.step(sid, 1)
                    other.close_session(sid)

            noise = threading.Thread(target=_noise, name="migrate-noise")
            noise.start()
            try:
                client.step(mig, 5)
                client.step(ctrl, 5)
                source = client.request({"op": "topology"})["routes"][mig]
                target = 1 - source
                moved = client.request({"op": "migrate", "session": mig,
                                        "target": target})
                assert moved["moved"] is True
                assert moved["source"] == source
                assert moved["target"] == target
                assert moved["step"] == 5
                digest_mig = client.step(mig, 20)["digest"]
                digest_ctrl = client.step(ctrl, 20)["digest"]
                assert digest_mig == digest_ctrl
                routes = client.request({"op": "topology"})["routes"]
                assert routes[mig] == target
            finally:
                noise_stop.set()
                noise.join(timeout=60.0)
            client.close_session(mig)
            client.close_session(ctrl)

    def test_migrate_without_target_picks_another_shard(self, gateway):
        with gateway.connect() as client:
            sid = _create(client)
            source = client.request({"op": "topology"})["routes"][sid]
            moved = client.request({"op": "migrate", "session": sid})
            assert moved["moved"] is True
            assert moved["target"] != source
            client.close_session(sid)

    def test_migrated_session_survives_target_crash(self, gateway):
        """Migration re-journals on the target: kill the target right
        after the move and the session must recover at the same step."""
        with gateway.connect() as client:
            sid = _create(client, seed=99)
            client.step(sid, 7)
            digest_before = client.step(sid, 0)["digest"]
            source = client.request({"op": "topology"})["routes"][sid]
            target = 1 - source
            client.request({"op": "migrate", "session": sid,
                            "target": target})
            gateway.kill_shard(target)
            described = client.step(sid, 0)
            assert described["step"] == 7
            assert described["digest"] == digest_before
            client.close_session(sid)
            _wait_all_alive(gateway)


class TestAdminOps:
    def test_drain_shard_empties_it_and_blocks_new_placements(
            self, gateway):
        with gateway.connect() as client:
            sids = [_create(client) for _ in range(4)]
            drained = client.request({"op": "drain_shard", "shard": 0})
            assert drained["remaining"] == 0
            assert not drained["failed"]
            routes = client.request({"op": "topology"})["routes"]
            assert all(routes[sid] == 1 for sid in sids)
            # New sessions can only land on the surviving active shard.
            extra = _create(client)
            routes = client.request({"op": "topology"})["routes"]
            assert routes[extra] == 1
            # Draining the last active shard must be refused.
            with pytest.raises(ServeClientError) as excinfo:
                client.request({"op": "drain_shard", "shard": 1})
            assert excinfo.value.code == "bad_request"
            # Rebalance walks sessions back to ring placement (shard 0
            # rejoins the ring when it is re-added by rebalance's ring).
            gateway.run(_reactivate(gateway.gateway, 0))
            rebalanced = client.request({"op": "rebalance"})
            assert not rebalanced["failed"]
            ring = HashRing(range(2))
            routes = client.request({"op": "topology"})["routes"]
            for sid in sids + [extra]:
                assert routes[sid] == ring.lookup(sid)
            for sid in sids + [extra]:
                client.close_session(sid)


async def _reactivate(gw, index: int) -> None:
    gw.ring.add(index)
    gw.active.add(index)


def _wait_all_alive(gateway, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not gateway.gateway.supervisor.dead_shards():
            return
        time.sleep(0.05)
    raise TimeoutError("shards did not come back alive")


class TestShardCrashRecovery:
    def test_killed_shard_sessions_recover_on_survivor(self, gateway):
        with gateway.connect() as client:
            sids = [_create(client, seed=123) for _ in range(4)]
            for sid in sids:
                client.step(sid, 6)
            digests = {sid: client.step(sid, 0)["digest"]
                       for sid in sids}
            routes = client.request({"op": "topology"})["routes"]
            victims = [sid for sid in sids if routes[sid] == 0]
            assert victims, "expected at least one session on shard 0"

            gateway.kill_shard(0)
            # journal_every=1 in the fixture: recovery is exact — same
            # step, same digest, no session loss.
            for sid in sids:
                described = client.step(sid, 0)
                assert described["step"] == 6
                assert described["digest"] == digests[sid]
            topology = client.request({"op": "topology"})
            assert topology["sessions_lost"] == 0
            for sid in victims:
                assert topology["routes"][sid] == 1
            _wait_all_alive(gateway)
            assert all(s["alive"] for s in
                       client.request({"op": "topology"})["shards"])
            for sid in sids:
                client.close_session(sid)
