"""Tests for persistent-contact warm starting."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import SolverParams, World
from repro.physics.lcp import ContactCache


def stack_world(warm, iterations=20):
    world = World(ctx=FPContext(census=False),
                  solver=SolverParams(warm_start=warm,
                                      iterations=iterations))
    world.add_ground_plane(0.0)
    for k in range(4):
        world.add_box([0, 0.5 + 1.01 * k, 0], [0.5, 0.5, 0.5], 3.0)
    return world


class TestWarmStart:
    def test_reduces_penetration_at_low_iterations(self):
        def penetration(warm):
            world = stack_world(warm, iterations=5)
            for _ in range(120):
                world.step()
            return max(world.penetration_series[60:])

        assert penetration(True) < penetration(False) * 0.6

    def test_stack_stays_ordered(self):
        world = stack_world(True)
        for _ in range(150):
            world.step()
        ys = world.bodies.pos[:4, 1]
        assert list(ys) == sorted(ys)
        assert np.isfinite(ys).all()

    def test_no_energy_injection(self):
        world = stack_world(True)
        for _ in range(150):
            world.step()
        energy = world.monitor.totals()
        assert energy[-1] <= energy[0] + 0.02 * abs(energy[0])

    def test_default_off(self):
        assert SolverParams().warm_start is False

    def test_bounce_unaffected_by_stale_cache(self):
        # A bouncing ball re-contacts at different positions; stale
        # impulses must not glue it to the floor.
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(warm_start=True))
        world.add_ground_plane(0.0, restitution=0.0)
        world.add_sphere([0, 1.2, 0], 0.25, 1.0, restitution=0.7)
        bounced = False
        for _ in range(200):
            world.step()
            if world.bodies.linvel[0, 1] > 0.5:
                bounced = True
        assert bounced


class TestContactCache:
    def _contacts_rows(self, world):
        from repro.physics import broadphase, lcp, narrowphase
        world.bodies.ensure_world_row()
        world.bodies.refresh_derived(world.ctx)
        aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                        world.bodies.view("rot"))
        pairs = broadphase.candidate_pairs(world.geoms, aabbs)
        contacts = narrowphase.generate_contacts(
            world.ctx, world.bodies, world.geoms, pairs)
        rows = lcp.build_rows(world.ctx, world.bodies, contacts,
                              world.joints, world.dt, world.solver)
        return contacts, rows

    def test_store_then_match(self):
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(warm_start=True))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.45, 0], [0.5, 0.5, 0.5], 1.0)
        cache = ContactCache()
        contacts, rows = self._contacts_rows(world)
        rows.lam[: len(contacts)] = 2.0  # pretend converged impulses
        cache.store(contacts, rows)

        contacts2, rows2 = self._contacts_rows(world)
        matched = cache.warm_start(contacts2, rows2, world.solver)
        assert matched == len(contacts2)
        assert np.allclose(rows2.lam[: len(contacts2)],
                           2.0 * world.solver.warm_start_factor)

    def test_moved_contact_not_matched(self):
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(warm_start=True))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.45, 0], [0.5, 0.5, 0.5], 1.0)
        cache = ContactCache(match_tolerance=0.05)
        contacts, rows = self._contacts_rows(world)
        rows.lam[: len(contacts)] = 2.0
        cache.store(contacts, rows)

        # Teleport by a non-multiple of the box width so no old corner
        # coincides with a new one.
        world.bodies.pos[0, 0] += 0.77
        contacts2, rows2 = self._contacts_rows(world)
        matched = cache.warm_start(contacts2, rows2, world.solver)
        assert matched == 0

    def test_disabled_params_no_matches(self):
        world = World(ctx=FPContext(census=False))  # warm_start=False
        world.add_ground_plane(0.0)
        world.add_box([0, 0.45, 0], [0.5, 0.5, 0.5], 1.0)
        cache = ContactCache()
        contacts, rows = self._contacts_rows(world)
        assert cache.warm_start(contacts, rows, world.solver) == 0
