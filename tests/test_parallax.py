"""Tests for the ParallAX work-queue phase scheduler."""

import numpy as np
import pytest

from repro.arch.parallax import (
    QueueResult,
    lcp_work_items,
    narrow_work_items,
    phase_speedup,
    simulate_work_queue,
)
from repro.fp import FPContext
from repro.workloads import build


class TestWorkQueue:
    def test_single_core_serializes(self):
        result = simulate_work_queue([1.0, 2.0, 3.0], 1)
        assert result.makespan == 6.0
        assert result.speedup == pytest.approx(1.0)
        assert result.utilization == pytest.approx(1.0)

    def test_perfect_split(self):
        result = simulate_work_queue([1.0] * 8, 4)
        assert result.makespan == 2.0
        assert result.speedup == pytest.approx(4.0)

    def test_imbalance_limits_speedup(self):
        # One giant item dominates: speedup capped near 1.
        result = simulate_work_queue([10.0, 1.0, 1.0, 1.0], 4)
        assert result.makespan == 10.0
        assert result.speedup == pytest.approx(1.3)

    def test_more_cores_never_slower(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(0.5, 5.0, 40).tolist()
        makespans = [simulate_work_queue(costs, n).makespan
                     for n in (1, 2, 4, 8, 16)]
        assert makespans == sorted(makespans, reverse=True)

    def test_speedup_bounded_by_item_count(self):
        result = simulate_work_queue([1.0, 1.0, 1.0], 64)
        assert result.speedup <= 3.0 + 1e-9

    def test_empty_items(self):
        result = simulate_work_queue([], 4)
        assert result.makespan == 0.0
        assert result.speedup == 0.0

    def test_zero_cores_rejected(self):
        with pytest.raises(ValueError):
            simulate_work_queue([1.0], 0)

    def test_fifo_order_matters(self):
        # FIFO (no lookahead): a trailing big item extends the makespan
        # beyond the optimal packing.
        fifo_bad = simulate_work_queue([1.0, 1.0, 1.0, 9.0], 2)
        optimal = (1.0 + 1.0 + 1.0 + 9.0) / 2
        assert fifo_bad.makespan > optimal


class TestWorldWorkItems:
    @pytest.fixture(scope="class")
    def settled_breakable(self):
        world = build("breakable", ctx=FPContext(census=False))
        for _ in range(45):
            world.step()
        return world

    def test_lcp_items_match_island_count(self, settled_breakable):
        items = lcp_work_items(settled_breakable)
        assert len(items) == settled_breakable.island_count

    def test_intra_island_split(self, settled_breakable):
        base = lcp_work_items(settled_breakable)
        split = lcp_work_items(settled_breakable,
                               intra_island_parallelism=4)
        assert len(split) == 4 * len(base)
        assert sum(split) == pytest.approx(sum(base))

    def test_narrow_items_positive(self, settled_breakable):
        items = narrow_work_items(settled_breakable)
        assert len(items) > 5
        assert all(cost > 0 for cost in items)

    def test_narrow_scales_better_than_lcp(self, settled_breakable):
        """The wall is one island but dozens of pairs."""
        lcp = phase_speedup(lcp_work_items(settled_breakable), [16])[16]
        narrow = phase_speedup(narrow_work_items(settled_breakable),
                               [16])[16]
        assert narrow.speedup > lcp.speedup

    def test_intra_island_parallelism_restores_scaling(
            self, settled_breakable):
        coarse = phase_speedup(lcp_work_items(settled_breakable), [16])[16]
        fine = phase_speedup(
            lcp_work_items(settled_breakable, intra_island_parallelism=8),
            [16])[16]
        assert fine.speedup > coarse.speedup

    def test_empty_world_has_no_items(self):
        from repro.physics import World
        world = World(ctx=FPContext(census=False))
        world.step()
        assert lcp_work_items(world) == []
        assert narrow_work_items(world) == []
