"""Tests for the perf subsystem: sweep runner, fused kernels, bench.

The fused round-a/round-b/op/round-result kernel must be *bit-exact*
against the three-pass reduction it replaced — any divergence would
silently change every Table 1 number — and the parallel sweep paths
must return results identical to serial execution.
"""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.fp.context import FPContext
from repro.fp.rounding import (
    FULL_PRECISION,
    RoundingMode,
    fused_axpy,
    fused_binop,
    reduce_array,
    reduce_array_fast,
)
from repro.memo.memo_table import MemoTable
from repro.perf.bench import BenchProtocol, render_summary, run_bench
from repro.perf.sweep import (
    SweepJob,
    SweepOutcome,
    SweepRunner,
    resolve_workers,
)

MODES = (RoundingMode.NEAREST, RoundingMode.JAMMING,
         RoundingMode.TRUNCATION)


def _bits(arr):
    return np.asarray(arr, dtype=np.float32).reshape(-1).view(np.uint32)


# ----------------------------------------------------------------------
# module-level workers (must pickle across the process boundary)
# ----------------------------------------------------------------------
def _square(x):
    return x * x


def _square_outcome(x):
    return SweepOutcome(x * x, ops=1)


def _boom(x):
    raise ValueError(f"bad cell {x}")


class TestReduceArrayEquivalence:
    """Satellite: cached-mask ``reduce_array`` vs the fast path."""

    @pytest.mark.parametrize("mode", MODES)
    def test_bit_exact_all_precisions(self, mode):
        rng = np.random.default_rng(11)
        # The fast path's contract covers normals, zeros and infinities
        # (NaN payloads / denormals are documented divergences).
        values = np.concatenate([
            rng.standard_normal(512).astype(np.float32),
            (rng.standard_normal(64) * 1e30).astype(np.float32),
            (rng.standard_normal(64) * 1e-30).astype(np.float32),
            np.array([0.0, -0.0, 1.0, -1.0, np.inf, -np.inf],
                     dtype=np.float32),
        ])
        for precision in range(FULL_PRECISION + 1):
            slow = reduce_array(values, precision, mode)
            fast = reduce_array_fast(values, precision, mode)
            assert _bits(slow).tolist() == _bits(fast).tolist(), (
                f"mode={mode} precision={precision}")


class TestFusedKernels:
    """The fused kernel vs the legacy three-pass hot path."""

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("precision", [0, 3, 9, 17, 22])
    def test_fused_binop_bit_exact(self, mode, precision):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((40, 3)).astype(np.float32)
        b = rng.standard_normal((40, 3)).astype(np.float32)
        for ufunc in (np.add, np.subtract, np.multiply):
            ra = reduce_array_fast(a, precision, mode)
            rb = reduce_array_fast(b, precision, mode)
            legacy = reduce_array_fast(ufunc(ra, rb), precision, mode)
            fused = fused_binop(ufunc, a, b, precision, mode)
            assert _bits(legacy).tolist() == _bits(fused).tolist()

    def test_fused_binop_broadcast_and_scalar(self):
        a = np.float32(1.7)
        b = np.arange(6, dtype=np.float32).reshape(2, 3) * np.float32(0.3)
        fused = fused_binop(np.multiply, a, b, 9, RoundingMode.JAMMING)
        ra = reduce_array_fast(a, 9, RoundingMode.JAMMING)
        rb = reduce_array_fast(b, 9, RoundingMode.JAMMING)
        legacy = reduce_array_fast(ra * rb, 9, RoundingMode.JAMMING)
        assert fused.shape == (2, 3)
        assert _bits(legacy).tolist() == _bits(fused).tolist()

    def test_fused_binop_leaves_inputs_unmutated(self):
        a = np.full(8, 1.2345678, dtype=np.float32)
        b = np.full(8, 2.3456789, dtype=np.float32)
        sa, sb = a.copy(), b.copy()
        fused_binop(np.add, a, b, 5, RoundingMode.TRUNCATION)
        assert np.array_equal(a, sa) and np.array_equal(b, sb)

    @pytest.mark.parametrize("mode", MODES)
    def test_fused_axpy_matches_two_binops(self, mode):
        rng = np.random.default_rng(6)
        a = rng.standard_normal(64).astype(np.float32)
        x = rng.standard_normal(64).astype(np.float32)
        y = rng.standard_normal(64).astype(np.float32)
        for precision in (2, 9, 16):
            t = fused_binop(np.multiply, a, x, precision, mode)
            expect = fused_binop(np.add, y, t, precision, mode)
            got = fused_axpy(a, x, y, precision, mode)
            assert _bits(expect).tolist() == _bits(got).tolist()

    def test_context_axpy_census_free(self):
        ctx = FPContext({"lcp": 9}, mode="jam", census=False)
        ctx.phase = "lcp"
        rng = np.random.default_rng(7)
        a = rng.standard_normal(32).astype(np.float32)
        x = rng.standard_normal(32).astype(np.float32)
        y = rng.standard_normal(32).astype(np.float32)
        expect = ctx.add(y, ctx.mul(a, x))
        got = ctx.axpy(a, x, y)
        assert _bits(expect).tolist() == _bits(got).tolist()

    def test_context_axpy_census_counts_both_ops(self):
        ctx = FPContext({"lcp": 9}, mode="jam", census=True)
        ctx.phase = "lcp"
        rng = np.random.default_rng(8)
        a = rng.standard_normal(16).astype(np.float32)
        x = rng.standard_normal(16).astype(np.float32)
        y = rng.standard_normal(16).astype(np.float32)
        ctx.axpy(a, x, y)
        assert ctx.stats[("lcp", "mul")].total == 16
        assert ctx.stats[("lcp", "add")].total == 16


class TestMemoBudgetRestore:
    """Satellite: ``reset_stats`` restores the configured memo budget."""

    def test_budget_restored(self):
        ctx = FPContext({"lcp": 9}, memo_budget=123)
        ctx.memo_budget = 4  # drawn down by probes
        ctx.reset_stats()
        assert ctx.memo_budget == 123

    def test_unlimited_budget_stays_none(self):
        ctx = FPContext({"lcp": 9})
        ctx.reset_stats()
        assert ctx.memo_budget is None


class TestProbeBatch:
    """Satellite: vectorized probe path ≡ sequential lookups."""

    def test_hit_count_matches_sequential(self):
        rng = np.random.default_rng(3)
        # Narrow operand space so pairs repeat and the table actually
        # hits (32 x 32 = 1024 distinct pairs across 4000 probes).
        abits = rng.integers(0, 32, size=4000).astype(np.uint32) << 18
        bbits = rng.integers(0, 32, size=4000).astype(np.uint32) << 18
        seq = MemoTable()
        seq_hits = sum(seq.lookup(int(a), int(b))
                       for a, b in zip(abits, bbits))
        batch = MemoTable()
        batch_hits = batch.probe_batch(abits, bbits)
        assert seq_hits == batch_hits > 0
        assert batch.stats.lookups == seq.stats.lookups == 4000
        assert batch.stats.hits == seq.stats.hits


class TestSweepRunner:
    def test_serial_matches_parallel(self):
        jobs = [SweepJob(key=(i,), fn=_square, args=(i,))
                for i in range(7)]
        serial = SweepRunner(1).run(jobs)
        parallel = SweepRunner(4).run(jobs)
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.key for r in serial] == [r.key for r in parallel]
        assert all(r.ok for r in parallel)

    def test_outcome_ops_metrics(self):
        runner = SweepRunner(1)
        results = runner.run([SweepJob(key=(i,), fn=_square_outcome,
                                       args=(i,)) for i in range(5)])
        assert [r.value for r in results] == [0, 1, 4, 9, 16]
        assert runner.last_metrics.ops == 5
        assert runner.last_metrics.jobs == 5

    def test_errors_marshalled_and_reraised(self):
        jobs = [SweepJob(key=("ok",), fn=_square, args=(2,)),
                SweepJob(key=("bad",), fn=_boom, args=(9,))]
        results = SweepRunner(1).run(jobs, reraise=False)
        assert results[0].ok and not results[1].ok
        assert "bad cell 9" in results[1].error
        with pytest.raises(RuntimeError, match="bad"):
            SweepRunner(1).run(jobs)

    def test_map_convenience(self):
        results = SweepRunner(1).map(_square, [(2,), (3,)])
        assert [r.value for r in results] == [4, 9]

    def test_resolve_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        assert resolve_workers(5) == 5
        assert resolve_workers(5, jobs=2) == 2
        assert resolve_workers(0) == 1
        monkeypatch.setenv("REPRO_WORKERS", "3")
        assert resolve_workers() == 3
        assert resolve_workers(None, jobs=10) == 3
        monkeypatch.setenv("REPRO_WORKERS", "nope")
        with pytest.raises(ValueError):
            resolve_workers()


class TestBench:
    PROTOCOL = BenchProtocol(census_free_warmup=1, census_free_steps=2,
                             census_warmup=1, census_steps=1,
                             kernel_shape=(64, 4), kernel_iters=3)

    def test_run_bench_writes_payload(self, tmp_path):
        payload = run_bench(scenarios=["continuous"],
                            protocol=self.PROTOCOL,
                            output_dir=str(tmp_path), compare=False,
                            obs_overhead=False)
        bench_files = list(tmp_path.glob("BENCH_*.json"))
        assert len(bench_files) == 1
        on_disk = json.loads(bench_files[0].read_text())
        assert on_disk["kind"] == "repro-bench"
        row = on_disk["scenarios"]["continuous"]
        assert row["census_free_steps_per_sec"] > 0
        assert row["census_steps_per_sec"] > 0
        assert on_disk["kernel"]["binop_pairs_per_sec"] > 0
        summary = render_summary(payload)
        assert "continuous" in summary and "kernel:" in summary

    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown"):
            run_bench(scenarios=["nope"], protocol=self.PROTOCOL,
                      output_dir=str(tmp_path))

    def test_cli_bench_smoke(self, tmp_path, capsys):
        assert main(["bench", "--scenarios", "continuous",
                     "--steps", "2", "--census-steps", "1",
                     "--kernel-iters", "2", "--no-obs-overhead",
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "steps/s" in out
        assert list(tmp_path.glob("BENCH_*.json"))

    def test_cli_health_multi_seed(self, capsys):
        assert main(["health", "continuous", "--steps", "8",
                     "--scale", "0.4", "--inject-rate", "0.001",
                     "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out and "2/2 seeds finite" in out


class TestBenchStamp:
    """Collision-proof bench filenames (parallel CI jobs, same second)."""

    def test_stamps_are_unique_within_a_second(self):
        from repro.perf.bench import bench_stamp

        stamps = {bench_stamp() for _ in range(50)}
        assert len(stamps) == 50

    def test_stamp_format_keeps_baseline_globs_working(self):
        import fnmatch
        import os
        import re

        from repro.perf.bench import bench_stamp

        stamp = bench_stamp()
        # <date>_<time>_p<pid>n<counter> — sortable date prefix, pid +
        # per-process counter suffix.
        assert re.fullmatch(
            rf"\d{{8}}_\d{{6}}_p{os.getpid()}n\d+", stamp)
        assert fnmatch.fnmatch(f"BENCH_{stamp}.json", "BENCH_*.json")
        assert fnmatch.fnmatch(f"BENCH_{stamp}_serve.json",
                               "BENCH_*_serve.json")
        # The perf gate's exclusion of serve payloads still holds.
        assert not f"BENCH_{stamp}.json".endswith("_serve.json")


class TestBaselineSpeedupGuards:
    """Speedups against a degenerate baseline must be null, not inf."""

    PROTOCOL = TestBench.PROTOCOL

    def _run(self, tmp_path, baseline):
        base_path = tmp_path / "BENCH_baseline.json"
        base_path.write_text(json.dumps(baseline))
        return run_bench(scenarios=["continuous"], protocol=self.PROTOCOL,
                         output_dir=str(tmp_path / "out"),
                         baseline_path=str(base_path),
                         obs_overhead=False)

    def test_zero_baseline_rate_yields_null_speedup(self, tmp_path):
        payload = self._run(tmp_path, {
            "scenarios": {"continuous": {
                "census_free_steps_per_sec": 0.0,
                "census_steps_per_sec": 120.0}},
            "kernel": {"binop_pairs_per_sec": 0},
        })
        sp = payload["speedup_vs_baseline"]["continuous"]
        assert sp["census_free"] is None
        assert sp["census"] is not None and sp["census"] > 0
        assert payload["kernel"]["speedup_vs_baseline"] is None
        assert any("census_free" in w for w in payload["warnings"])

    def test_missing_scenario_entry_yields_null_speedup(self, tmp_path):
        payload = self._run(tmp_path, {"scenarios": {}})
        sp = payload["speedup_vs_baseline"]["continuous"]
        assert sp == {"census_free": None, "census": None}
        assert len(payload["warnings"]) >= 2

    def test_render_shows_dash_not_inf(self, tmp_path):
        payload = self._run(tmp_path, {
            "scenarios": {"continuous": {
                "census_free_steps_per_sec": 0.0,
                "census_steps_per_sec": 0.0}},
        })
        text = render_summary(payload)
        assert "inf" not in text
        assert "-" in text
        assert "warning:" in text


class TestObsOverhead:
    def test_overhead_payload_shape(self, tmp_path):
        from repro.perf.bench import _obs_overhead

        protocol = BenchProtocol(obs_scenario="continuous",
                                 obs_warmup=1, obs_steps=3,
                                 obs_rounds=1)
        result = _obs_overhead(protocol)
        assert result["scenario"] == "continuous"
        assert result["plain_steps_per_sec"] > 0
        assert result["traced_steps_per_sec"] > 0
        assert isinstance(result["ok"], bool)
        assert result["budget_pct"] == 10.0

    def test_overhead_reported_in_payload_and_summary(self, tmp_path):
        protocol = BenchProtocol(
            census_free_warmup=1, census_free_steps=2, census_warmup=1,
            census_steps=1, kernel_shape=(64, 4), kernel_iters=3,
            obs_scenario="continuous", obs_warmup=1, obs_steps=3,
            obs_rounds=1)
        payload = run_bench(scenarios=["continuous"], protocol=protocol,
                            output_dir=str(tmp_path), compare=False)
        assert "obs_overhead" in payload
        text = render_summary(payload)
        assert "metrics overhead:" in text
        assert ("OK" in text) or ("REGRESSED" in text)
