"""Executable-documentation test: the API guide's snippets must run.

The final snippet regenerates paper artifacts (minutes when the
experiment cache is cold), so only the library-level snippets execute
here; the experiments module has its own integration tests.
"""

import re
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"


def _snippets():
    text = API_MD.read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


class TestApiGuide:
    def test_guide_exists_with_snippets(self):
        snippets = _snippets()
        assert len(snippets) >= 8

    def test_library_snippets_execute(self):
        snippets = _snippets()
        namespace = {}
        for code in snippets:
            if "compute_table4" in code or "compute_figure5" in code:
                continue  # covered by the experiments integration tests
            exec(code, namespace)  # noqa: S102 - executable documentation

    def test_sections_cover_every_layer(self):
        text = API_MD.read_text()
        for module in ("repro.fp", "repro.memo", "repro.physics",
                       "repro.workloads", "repro.tuning", "repro.arch",
                       "repro.experiments", "repro.perf", "repro.obs",
                       "repro.serve"):
            assert module in text
