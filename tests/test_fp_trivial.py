"""Unit + property tests for trivial-operation detection (Table 2 + new
conditions)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.bits import array_to_bits
from repro.fp.rounding import RoundingMode, reduce_array
from repro.fp.trivial import (
    add_trivial_masks,
    div_trivial_masks,
    is_normal,
    is_pm_one,
    is_pow2,
    is_zero,
    mul_trivial_masks,
)


def bits_of(*values):
    return array_to_bits(np.array(values, dtype=np.float32))


class TestPredicates:
    def test_is_zero(self):
        assert is_zero(bits_of(0.0))[0]
        assert is_zero(bits_of(-0.0))[0]
        assert not is_zero(bits_of(1e-20))[0]

    def test_is_pm_one(self):
        flags = is_pm_one(bits_of(1.0, -1.0, 2.0, 0.0))
        assert flags.tolist() == [True, True, False, False]

    def test_is_pow2(self):
        flags = is_pow2(bits_of(2.0, -8.0, 0.25, 3.0, 0.0, 1.0))
        assert flags.tolist() == [True, True, True, False, False, True]

    def test_is_normal(self):
        flags = is_normal(bits_of(1.0, 0.0, np.inf, 1e-40))
        assert flags.tolist() == [True, False, False, False]


class TestAddConditions:
    def test_zero_operand_conventional(self):
        masks = add_trivial_masks(bits_of(0.0, 5.0), bits_of(3.0, 0.0), 23)
        assert masks.conventional.tolist() == [True, True]
        assert masks.use_b.tolist() == [True, False]
        assert masks.use_a.tolist() == [False, True]

    def test_exponent_difference_new_condition(self):
        # |Ea - Eb| = 12 > 5 + 1 -> trivial under the new condition only.
        masks = add_trivial_masks(bits_of(4096.0), bits_of(1.0), 5)
        assert not masks.conventional[0]
        assert masks.extended[0]
        assert masks.use_a[0] and not masks.use_b[0]

    def test_exponent_difference_threshold_exact(self):
        # diff == precision + 1 is NOT trivial (strict inequality).
        a = bits_of(2.0 ** 6)
        b = bits_of(1.0)
        masks = add_trivial_masks(a, b, 5)
        assert not masks.extended[0]
        masks = add_trivial_masks(a, b, 4)
        assert masks.extended[0]

    def test_smaller_operand_side(self):
        masks = add_trivial_masks(bits_of(1.0), bits_of(4096.0), 5)
        assert masks.use_b[0] and not masks.use_a[0]

    def test_non_trivial(self):
        masks = add_trivial_masks(bits_of(1.5), bits_of(2.5), 10)
        assert not masks.extended[0]

    def test_extended_only_property(self):
        masks = add_trivial_masks(bits_of(4096.0, 0.0),
                                  bits_of(1.0, 1.0), 5)
        assert masks.extended_only.tolist() == [True, False]


class TestMulConditions:
    def test_conventional_cases(self):
        a = bits_of(0.0, 1.0, -1.0, 3.0)
        b = bits_of(5.0, 5.0, 5.0, 1.0)
        masks = mul_trivial_masks(a, b, 23)
        assert masks.conventional.tolist() == [True] * 4

    def test_power_of_two_new_condition(self):
        masks = mul_trivial_masks(bits_of(4.0), bits_of(3.3), 23)
        assert not masks.conventional[0]
        assert masks.extended[0]
        assert masks.use_b[0]  # result = the other operand scaled

    def test_zero_result_has_no_source(self):
        masks = mul_trivial_masks(bits_of(0.0), bits_of(5.0), 23)
        assert masks.extended[0]
        assert not masks.use_a[0] and not masks.use_b[0]

    def test_general_value_not_trivial(self):
        masks = mul_trivial_masks(bits_of(3.3), bits_of(2.7), 23)
        assert not masks.extended[0]

    def test_reduction_creates_triviality(self):
        # 2.04 is not a power of two, but at 3 bits it reduces to 2.0.
        value = np.array([2.04], dtype=np.float32)
        reduced = reduce_array(value, 3, RoundingMode.TRUNCATION)
        masks = mul_trivial_masks(array_to_bits(reduced), bits_of(3.3), 3)
        assert masks.extended[0]


class TestDivConditions:
    def test_divisor_one(self):
        masks = div_trivial_masks(bits_of(7.0), bits_of(1.0))
        assert masks.conventional[0] and masks.use_a[0]

    def test_zero_dividend(self):
        masks = div_trivial_masks(bits_of(0.0), bits_of(9.0))
        assert masks.conventional[0]

    def test_power_of_two_divisor_new_condition(self):
        masks = div_trivial_masks(bits_of(7.0), bits_of(4.0))
        assert not masks.conventional[0]
        assert masks.extended[0] and masks.use_a[0]

    def test_general_divisor_not_trivial(self):
        masks = div_trivial_masks(bits_of(7.0), bits_of(3.0))
        assert not masks.extended[0]

    def test_pow2_dividend_alone_not_trivial(self):
        # Only the divisor's mantissa matters for the new condition.
        masks = div_trivial_masks(bits_of(4.0), bits_of(3.0))
        assert not masks.extended[0]


values32 = st.floats(min_value=-(2.0 ** 60), max_value=2.0 ** 60,
                     allow_nan=False, allow_infinity=False, width=32)


class TestMaskInvariants:
    @given(st.lists(values32, min_size=1, max_size=30),
           st.lists(values32, min_size=1, max_size=30),
           st.integers(min_value=1, max_value=23))
    @settings(max_examples=200, deadline=None)
    def test_add_masks_consistent(self, avals, bvals, precision):
        n = min(len(avals), len(bvals))
        a = bits_of(*avals[:n])
        b = bits_of(*bvals[:n])
        masks = add_trivial_masks(a, b, precision)
        # conventional implies extended
        assert not np.any(masks.conventional & ~masks.extended)
        # a source is only claimed on trivial lanes
        assert not np.any((masks.use_a | masks.use_b) & ~masks.extended)
        # never both sources at once
        assert not np.any(masks.use_a & masks.use_b)

    @given(st.lists(values32, min_size=1, max_size=30),
           st.lists(values32, min_size=1, max_size=30))
    @settings(max_examples=200, deadline=None)
    def test_mul_masks_consistent(self, avals, bvals):
        n = min(len(avals), len(bvals))
        a = bits_of(*avals[:n])
        b = bits_of(*bvals[:n])
        masks = mul_trivial_masks(a, b, 23)
        assert not np.any(masks.conventional & ~masks.extended)
        assert not np.any(masks.use_a & masks.use_b)

    @given(st.integers(min_value=1, max_value=22))
    @settings(max_examples=23, deadline=None)
    def test_lower_precision_never_reduces_add_triviality(self, precision):
        rng = np.random.default_rng(3)
        a = bits_of(*rng.uniform(-1e4, 1e4, 200))
        b = bits_of(*rng.uniform(-1e-2, 1e-2, 200))
        hi = add_trivial_masks(a, b, precision)
        lo = add_trivial_masks(a, b, precision - 1)
        # Every lane trivial at the higher precision stays trivial lower.
        assert not np.any(hi.extended & ~lo.extended)
