"""Shared fixtures for the test suite."""

import os

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import World

# Keep experiment disk caching out of the repo during tests.
os.environ.setdefault("REPRO_CACHE_DIR", "/tmp/repro_test_cache")


@pytest.fixture
def ctx():
    """A full-precision census context."""
    return FPContext()


@pytest.fixture
def fast_ctx():
    """A census-free full-precision context."""
    return FPContext(census=False)


@pytest.fixture
def reduced_ctx():
    """A census context with both studied phases at 6 bits, jamming."""
    return FPContext({"lcp": 6, "narrow": 6})


@pytest.fixture
def empty_world(fast_ctx):
    return World(ctx=fast_ctx)


@pytest.fixture
def ground_world(fast_ctx):
    world = World(ctx=fast_ctx)
    world.add_ground_plane(0.0)
    return world


@pytest.fixture
def resting_box_world(fast_ctx):
    world = World(ctx=fast_ctx)
    world.add_ground_plane(0.0)
    world.add_box([0.0, 0.5, 0.0], [0.5, 0.5, 0.5], 2.0)
    return world


def assert_finite(array):
    assert np.isfinite(np.asarray(array)).all()
