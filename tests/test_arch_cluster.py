"""Tests for the joint cluster simulator and arbitration policies."""

import pytest

from repro.arch.cluster import simulate_cluster
from repro.arch.core import cluster_ipc
from repro.arch.l1fpu import CONJOIN, LOOKUP_TRIV, REDUCED_TRIV, mini_fpu
from repro.arch.trace import OpProfile, PhaseWorkload, generate_trace


def make_traces(n, length=4000, precision=8, fp_fraction=0.31,
                div_share=0.05):
    ops = {
        "add": OpProfile(0.45, 0.3, 0.5),
        "sub": OpProfile(0.05, 0.3, 0.5),
        "mul": OpProfile(0.50 - div_share, 0.3, 0.45),
        "div": OpProfile(div_share, 0.05, 0.1),
    }
    wl = PhaseWorkload("lcp", precision, fp_fraction, ops)
    return [generate_trace(wl, length, seed=s) for s in range(n)]


class TestValidation:
    def test_single_core_matches_independent_model(self):
        traces = make_traces(1, div_share=0.0)
        joint = simulate_cluster(traces, CONJOIN, "static")
        indep = cluster_ipc(traces[0], CONJOIN, 1)
        assert joint.mean_ipc == pytest.approx(indep, rel=0.01)

    @pytest.mark.parametrize("n", [2, 4])
    def test_static_tracks_independent_model(self, n):
        traces = make_traces(n)
        joint = simulate_cluster(traces, REDUCED_TRIV, "static")
        indep = sum(cluster_ipc(t, REDUCED_TRIV, n) for t in traces) / n
        # The joint model additionally serializes the shared divider, so
        # it may only be slightly slower, never faster.
        assert joint.mean_ipc <= indep * 1.02
        assert joint.mean_ipc >= indep * 0.90

    def test_all_integer_trace(self):
        traces = make_traces(4, fp_fraction=0.0)
        # rebuild with zero FP fraction
        ops = {op: OpProfile(0.25, 0, 0)
               for op in ("add", "sub", "mul", "div")}
        wl = PhaseWorkload("lcp", 8, 0.0, ops)
        traces = [generate_trace(wl, 1000, seed=s) for s in range(4)]
        joint = simulate_cluster(traces, CONJOIN, "static")
        assert joint.mean_ipc == pytest.approx(1.0)

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            simulate_cluster(make_traces(2), CONJOIN, "anarchic")

    def test_empty_cluster(self):
        with pytest.raises(ValueError):
            simulate_cluster([], CONJOIN, "static")


class TestPolicyComparison:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_demand_never_slower(self, n):
        traces = make_traces(n)
        static = simulate_cluster(traces, CONJOIN, "static")
        demand = simulate_cluster(traces, CONJOIN, "demand")
        assert demand.mean_ipc >= static.mean_ipc * 0.995

    def test_demand_gap_grows_with_sharing(self):
        gaps = []
        for n in (2, 8):
            traces = make_traces(n)
            static = simulate_cluster(traces, CONJOIN, "static")
            demand = simulate_cluster(traces, CONJOIN, "demand")
            gaps.append(demand.mean_ipc / static.mean_ipc)
        assert gaps[1] > gaps[0]

    def test_utilization_reported(self):
        traces = make_traces(4)
        result = simulate_cluster(traces, CONJOIN, "demand")
        assert 0.0 < result.fpu_utilization < 1.0

    def test_l1_designs_reduce_port_pressure(self):
        traces = make_traces(4)
        conjoin = simulate_cluster(traces, CONJOIN, "demand")
        lookup = simulate_cluster(traces, LOOKUP_TRIV, "demand")
        assert lookup.fpu_busy_cycles < conjoin.fpu_busy_cycles
        assert lookup.mean_ipc > conjoin.mean_ipc

    def test_mini_fpu_supported(self):
        traces = make_traces(4, precision=10)
        result = simulate_cluster(traces, mini_fpu(2), "static")
        assert result.mean_ipc > 0


class TestDividerContention:
    def test_div_heavy_trace_serializes(self):
        light = make_traces(4, div_share=0.0)
        heavy = make_traces(4, div_share=0.4)
        ipc_light = simulate_cluster(light, CONJOIN, "demand").mean_ipc
        ipc_heavy = simulate_cluster(heavy, CONJOIN, "demand").mean_ipc
        assert ipc_heavy < ipc_light * 0.7

    def test_divides_do_not_block_pipelined_issue(self):
        # With the divider split from the pipeline, a div-heavy cluster
        # still makes pipelined progress: IPC stays above the fully
        # serialized bound.
        heavy = make_traces(2, div_share=0.4)
        result = simulate_cluster(heavy, CONJOIN, "demand")
        fully_serialized = 1.0 / (0.69 + 0.31 * (0.4 * 2 * 20 + 0.6 * 4))
        assert result.mean_ipc > fully_serialized
