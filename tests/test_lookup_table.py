"""Unit + property tests for the 2K-entry arithmetic lookup table."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.rounding import RoundingMode, reduce_scalar
from repro.memo.lookup_table import LOOKUP_PRECISION_LIMIT, LookupTable

JAM = RoundingMode.JAMMING


@pytest.fixture(scope="module")
def lut():
    return LookupTable(5, JAM)


def reduced(value, precision=5):
    return reduce_scalar(np.float32(value), precision, JAM)


class TestStructure:
    def test_paper_geometry(self, lut):
        assert lut.entries == 2048
        assert lut.table.dtype == np.uint8
        assert lut.size_bytes == 2048  # 1 byte per entry

    def test_precision_limit_enforced(self):
        with pytest.raises(ValueError):
            LookupTable(6)
        with pytest.raises(ValueError):
            LookupTable(-1)

    def test_covers(self, lut):
        assert lut.covers("add", 5)
        assert lut.covers("mul", 3)
        assert not lut.covers("add", 6)
        assert not lut.covers("div", 3)

    def test_limit_constant(self):
        assert LOOKUP_PRECISION_LIMIT == 6

    def test_boot_time_population_is_deterministic(self):
        assert np.array_equal(LookupTable(5, JAM).table,
                              LookupTable(5, JAM).table)


class TestMultiply:
    def test_simple_product(self, lut):
        a, b = reduced(1.5), reduced(2.0)
        assert lut.compute_mul(a, b) == np.float32(a) * np.float32(b)

    def test_sign_logic(self, lut):
        a, b = reduced(1.5), reduced(-2.5)
        direct = reduce_scalar(np.float32(a) * np.float32(b), 5, JAM)
        assert lut.compute_mul(a, b) == direct

    def test_zero(self, lut):
        assert lut.compute_mul(0.0, 3.5) == 0.0
        assert np.signbit(lut.compute_mul(-0.0, 3.5))

    def test_exhaustive_exactness(self, lut):
        """Every reduced operand pair matches direct reduced execution."""
        for a5, b5 in itertools.product(range(0, 32, 3), repeat=2):
            a = (1.0 + a5 / 32.0) * 4.0
            b = (1.0 + b5 / 32.0) * 0.5
            direct = reduce_scalar(np.float32(a) * np.float32(b), 5, JAM)
            assert lut.compute_mul(a, b) == direct


class TestAdd:
    def test_same_exponent_carry(self, lut):
        # 1.5 + 1.5 = 3.0: equal exponents, guaranteed carry.
        assert lut.compute_add(1.5, 1.5) == 3.0

    def test_zero_operand(self, lut):
        assert lut.compute_add(0.0, 2.5) == 2.5
        assert lut.compute_add(2.5, 0.0) == 2.5

    def test_ordering_symmetric(self, lut):
        a, b = reduced(1.75), reduced(3.5)
        assert lut.compute_add(a, b) == lut.compute_add(b, a)

    def test_shifted_small_operand(self, lut):
        a, b = reduced(4.0), reduced(1.0)
        assert lut.compute_add(a, b) == 5.0

    def test_effective_subtract(self, lut):
        assert lut.compute_add(3.0, -1.0) == 2.0

    def test_subtract_to_zero(self, lut):
        assert lut.compute_add(1.5, -1.5) == 0.0

    def test_subtract_with_cancellation(self, lut):
        # 1.0 - 0.9375 needs left normalization.
        a = reduced(1.0)
        b = reduced(-0.9375)
        result = lut.compute_add(a, b)
        assert result == pytest.approx(0.0625, rel=0.5)

    def test_close_to_direct_execution(self, lut):
        rng = np.random.default_rng(0)
        worst = 0.0
        for _ in range(300):
            a = reduced(float(rng.uniform(1.0, 8.0)))
            b = reduced(float(rng.uniform(0.25, 8.0)))
            direct = reduce_scalar(np.float32(a) + np.float32(b), 5, JAM)
            result = lut.compute_add(a, b)
            if direct != 0:
                worst = max(worst, abs(result - direct) / abs(direct))
        # The 5-bit shifted-operand window loses at most ~1 reduced ulp.
        assert worst <= 2.0 ** -4


values = st.floats(min_value=0.015625, max_value=16384.0, allow_nan=False,
                   allow_infinity=False, width=32)


class TestLutProperties:
    @given(values, values)
    @settings(max_examples=200, deadline=None)
    def test_mul_matches_direct(self, a, b):
        lut = _module_lut()
        ra, rb = reduced(a), reduced(b)
        direct = reduce_scalar(np.float32(ra) * np.float32(rb), 5, JAM)
        result = lut.compute_mul(ra, rb)
        if direct == 0.0 or not np.isfinite(direct):
            return
        assert result == pytest.approx(direct, rel=2.0 ** -5)

    @given(values, values, st.sampled_from([1, -1]))
    @settings(max_examples=200, deadline=None)
    def test_add_close_to_direct(self, a, b, sign):
        lut = _module_lut()
        ra, rb = reduced(a), reduced(sign * b)
        direct = np.float32(ra) + np.float32(rb)
        result = lut.compute_add(ra, rb)
        scale = max(abs(ra), abs(rb))
        assert abs(result - direct) <= scale * 2.0 ** -3.5


_LUT_CACHE = {}


def _module_lut():
    if "lut" not in _LUT_CACHE:
        _LUT_CACHE["lut"] = LookupTable(5, JAM)
    return _LUT_CACHE["lut"]
