"""Tests for narrow-phase contact generation."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import World


def make_world():
    return World(ctx=FPContext(census=False))


def contacts_of(world):
    """Run just the collision part of a step without dynamics."""
    from repro.physics import broadphase, narrowphase
    world.bodies.ensure_world_row()
    world.bodies.refresh_derived(world.ctx)
    aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                    world.bodies.view("rot"))
    pairs = broadphase.candidate_pairs(world.geoms, aabbs)
    return narrowphase.generate_contacts(world.ctx, world.bodies,
                                         world.geoms, pairs)


class TestSphereSphere:
    def test_overlap_detected(self):
        world = make_world()
        a = world.add_sphere([0, 0, 0], 0.5)
        b = world.add_sphere([0.8, 0, 0], 0.5)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] == pytest.approx(0.2, abs=1e-5)
        # normal points from a to b
        assert contacts.normal[0, 0] == pytest.approx(1.0, abs=1e-5)
        assert contacts.body_a[0] == a and contacts.body_b[0] == b

    def test_no_contact_when_separated(self):
        world = make_world()
        world.add_sphere([0, 0, 0], 0.5)
        world.add_sphere([1.2, 0, 0], 0.5)
        assert len(contacts_of(world)) == 0

    def test_contact_point_between_centers(self):
        world = make_world()
        world.add_sphere([0, 0, 0], 0.5)
        world.add_sphere([0.9, 0, 0], 0.5)
        contacts = contacts_of(world)
        assert 0.0 < contacts.pos[0, 0] < 0.9

    def test_friction_geometric_mean(self):
        world = make_world()
        world.add_sphere([0, 0, 0], 0.5, friction=0.25)
        world.add_sphere([0.8, 0, 0], 0.5, friction=1.0)
        contacts = contacts_of(world)
        assert contacts.friction[0] == pytest.approx(0.5, abs=1e-6)


class TestSpherePlane:
    def test_penetrating_sphere(self):
        world = make_world()
        world.add_ground_plane(0.0)
        b = world.add_sphere([0, 0.3, 0], 0.5)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] == pytest.approx(0.2, abs=1e-5)
        # normal points from the plane (world body) up to the sphere
        assert contacts.normal[0, 1] == pytest.approx(1.0)
        assert contacts.body_b[0] == b
        assert contacts.body_a[0] == world.bodies.world_index

    def test_hovering_sphere_no_contact(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.6, 0], 0.5)
        assert len(contacts_of(world)) == 0

    def test_offset_plane(self):
        world = make_world()
        world.geoms.add_plane([0, 1, 0], 1.0)
        world.add_sphere([0, 1.4, 0], 0.5)
        contacts = contacts_of(world)
        assert contacts.depth[0] == pytest.approx(0.1, abs=1e-5)


class TestBoxPlane:
    def test_resting_box_four_corners(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_box([0, 0.45, 0], [0.5, 0.5, 0.5])
        contacts = contacts_of(world)
        assert len(contacts) == 4
        assert np.allclose(contacts.depth, 0.05, atol=1e-5)
        assert np.allclose(contacts.normal[:, 1], 1.0)

    def test_tilted_box_fewer_corners(self):
        world = make_world()
        world.add_ground_plane(0.0)
        angle = np.pi / 5
        quat = [np.cos(angle / 2), 0.0, 0.0, np.sin(angle / 2)]
        world.add_box([0, 0.6, 0], [0.5, 0.5, 0.5], quat=quat)
        contacts = contacts_of(world)
        assert 1 <= len(contacts) <= 2


class TestSphereBox:
    def test_face_contact(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_sphere([0.9, 0, 0], 0.5)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] == pytest.approx(0.1, abs=1e-4)
        assert contacts.normal[0, 0] == pytest.approx(1.0, abs=1e-4)

    def test_corner_contact(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        offset = 0.5 + 0.4 / np.sqrt(3)
        world.add_sphere([offset, offset, offset], 0.5)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        n = contacts.normal[0]
        assert np.allclose(n, 1 / np.sqrt(3), atol=1e-3)

    def test_separated(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_sphere([2.0, 0, 0], 0.5)
        assert len(contacts_of(world)) == 0

    def test_center_inside_box(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_sphere([0.3, 0.0, 0.0], 0.25)
        contacts = contacts_of(world)
        assert len(contacts) == 1
        assert contacts.depth[0] > 0.25  # deep penetration


class TestBoxBox:
    def test_face_contact_stack(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_box([0, 0.95, 0], [0.5, 0.5, 0.5])
        contacts = contacts_of(world)
        assert 1 <= len(contacts) <= 4
        # normal along +y (from lower body a to upper body b)
        assert abs(contacts.normal[0, 1]) == pytest.approx(1.0, abs=1e-4)
        assert np.all(contacts.depth > 0)

    def test_separated_boxes(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_box([2.0, 0, 0], [0.5, 0.5, 0.5])
        assert len(contacts_of(world)) == 0

    def test_corner_overlap_detected(self):
        # Offset 0.9 on every axis still overlaps (all |d| < 1).
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_box([0.9, 0.9, 0.9], [0.5, 0.5, 0.5])
        assert len(contacts_of(world)) >= 1

    def test_separating_axis_diagonal(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        world.add_box([1.05, 1.05, 1.05], [0.5, 0.5, 0.5])
        assert len(contacts_of(world)) == 0

    def test_rotated_overlap(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        angle = np.pi / 4
        quat = [np.cos(angle / 2), 0.0, 0.0, np.sin(angle / 2)]
        world.add_box([0.95, 0, 0], [0.5, 0.5, 0.5], quat=quat)
        contacts = contacts_of(world)
        assert len(contacts) >= 1
        assert np.all(contacts.depth > 0)

    def test_depth_increases_with_overlap(self):
        depths = []
        for gap in (0.95, 0.9, 0.85):
            world = make_world()
            world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
            world.add_box([gap, 0, 0], [0.5, 0.5, 0.5])
            contacts = contacts_of(world)
            depths.append(float(contacts.depth.max()))
        assert depths[0] < depths[1] < depths[2]

    def test_edge_edge_contact(self):
        world = make_world()
        world.add_box([0, 0, 0], [0.5, 0.5, 0.5])
        # rotate 45 deg about x and y so edges cross
        qx = np.array([np.cos(np.pi / 8), np.sin(np.pi / 8), 0, 0])
        world.add_box([0.98, 0.98, 0.0], [0.5, 0.5, 0.5],
                      quat=qx.tolist())
        contacts = contacts_of(world)
        # must either find a contact or legitimately separate; if found,
        # the depth must be small and positive
        if len(contacts):
            assert np.all(contacts.depth > 0)
            assert np.all(contacts.depth < 0.5)


class TestContactSetInvariants:
    def test_normals_unit_length(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_box([0, 0.4, 0], [0.5, 0.5, 0.5])
        world.add_sphere([0.2, 1.2, 0.1], 0.4)
        world.add_sphere([-0.2, 0.4, 0.0], 0.3)
        contacts = contacts_of(world)
        lengths = np.linalg.norm(contacts.normal.astype(np.float64), axis=1)
        assert np.allclose(lengths, 1.0, atol=1e-3)

    def test_positive_depths(self):
        world = make_world()
        world.add_ground_plane(0.0)
        for k in range(4):
            world.add_box([k * 0.9, 0.45, 0], [0.5, 0.5, 0.5])
        contacts = contacts_of(world)
        assert np.all(contacts.depth > 0)
