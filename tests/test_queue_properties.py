"""Property-based tests for the work-queue and cluster schedulers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.cluster import simulate_cluster
from repro.arch.l1fpu import CONJOIN, REDUCED_TRIV
from repro.arch.parallax import simulate_work_queue
from repro.arch.trace import OpProfile, PhaseWorkload, generate_trace

costs = st.lists(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    min_size=1, max_size=60,
)
core_counts = st.integers(min_value=1, max_value=32)


class TestWorkQueueProperties:
    @given(costs, core_counts)
    @settings(max_examples=200, deadline=None)
    def test_makespan_lower_bounds(self, items, cores):
        result = simulate_work_queue(items, cores)
        # Cannot beat perfect division of work, nor the largest item.
        assert result.makespan >= sum(items) / cores - 1e-9
        assert result.makespan >= max(items) - 1e-9

    @given(costs, core_counts)
    @settings(max_examples=200, deadline=None)
    def test_makespan_upper_bound(self, items, cores):
        # FIFO list scheduling is within 2x of optimal (Graham bound).
        result = simulate_work_queue(items, cores)
        optimal_lb = max(sum(items) / cores, max(items))
        assert result.makespan <= 2.0 * optimal_lb + 1e-9

    @given(costs, core_counts)
    @settings(max_examples=200, deadline=None)
    def test_utilization_in_unit_interval(self, items, cores):
        result = simulate_work_queue(items, cores)
        assert 0.0 < result.utilization <= 1.0 + 1e-12

    @given(costs)
    @settings(max_examples=100, deadline=None)
    def test_enough_cores_saturates(self, items):
        result = simulate_work_queue(items, len(items))
        assert result.makespan == pytest.approx(max(items))

    @given(costs, core_counts)
    @settings(max_examples=100, deadline=None)
    def test_speedup_consistent(self, items, cores):
        result = simulate_work_queue(items, cores)
        assert result.speedup == pytest.approx(
            sum(items) / result.makespan)


def _traces(n, fp_fraction, seed0=0, length=1500):
    ops = {
        "add": OpProfile(0.5, 0.2, 0.4),
        "sub": OpProfile(0.0, 0.0, 0.0),
        "mul": OpProfile(0.45, 0.2, 0.4),
        "div": OpProfile(0.05, 0.0, 0.0),
    }
    wl = PhaseWorkload("lcp", 8, fp_fraction, ops)
    return [generate_trace(wl, length, seed=seed0 + k) for k in range(n)]


class TestClusterProperties:
    @given(st.sampled_from([1, 2, 4, 8]),
           st.floats(min_value=0.0, max_value=0.6, allow_nan=False))
    @settings(max_examples=40, deadline=None)
    def test_ipc_bounded(self, n, fp_fraction):
        traces = _traces(n, fp_fraction)
        for policy in ("static", "demand"):
            result = simulate_cluster(traces, CONJOIN, policy)
            for ipc in result.per_core_ipc:
                assert 0.0 < ipc <= 1.0 + 1e-9

    @given(st.sampled_from([2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_demand_at_least_static(self, n):
        traces = _traces(n, 0.31)
        static = simulate_cluster(traces, CONJOIN, "static")
        demand = simulate_cluster(traces, CONJOIN, "demand")
        assert demand.mean_ipc >= static.mean_ipc - 1e-6

    @given(st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=20, deadline=None)
    def test_trivialization_never_hurts(self, n):
        traces = _traces(n, 0.31)
        plain = simulate_cluster(traces, CONJOIN, "demand")
        triv = simulate_cluster(traces, REDUCED_TRIV, "demand")
        assert triv.mean_ipc >= plain.mean_ipc - 1e-6

    @given(st.sampled_from([1, 2, 4]),
           st.integers(min_value=0, max_value=3))
    @settings(max_examples=20, deadline=None)
    def test_fpu_busy_bounded_by_cycles(self, n, seed0):
        traces = _traces(n, 0.31, seed0=seed0 * 10)
        result = simulate_cluster(traces, CONJOIN, "demand")
        assert 0 <= result.fpu_busy_cycles <= result.cycles
