"""Unit + property tests for reduced-precision operations with bypass."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp.ops import reduced_add, reduced_div, reduced_mul, reduced_sub
from repro.fp.rounding import RoundingMode, reduce_scalar

JAM = RoundingMode.JAMMING


def arr(*values):
    return np.array(values, dtype=np.float32)


class TestAdd:
    def test_full_precision_exact(self):
        result, sample = reduced_add(arr(1.5, 2.25), arr(0.25, 0.5), 23)
        assert result.tolist() == [1.75, 2.75]
        assert sample.total == 2

    def test_reduced_matches_round_op_round(self):
        a, b = 1.2345, 6.789
        result, _ = reduced_add(arr(a), arr(b), 7, JAM)
        ra = reduce_scalar(np.float32(a), 7, JAM)
        rb = reduce_scalar(np.float32(b), 7, JAM)
        expected = reduce_scalar(np.float32(ra) + np.float32(rb), 7, JAM)
        assert result[0] == expected

    def test_zero_bypass_keeps_full_precision(self):
        value = np.float32(1.2345678)  # not representable at 5 bits
        result, sample = reduced_add(arr(0.0), arr(value), 5, JAM)
        assert result[0] == value
        assert sample.conventional_trivial == 1

    def test_shifted_out_bypass_returns_larger(self):
        big = np.float32(12345.678)
        result, sample = reduced_add(arr(big), arr(1e-4), 5, JAM)
        assert result[0] == big
        assert sample.extended_trivial == 1
        assert sample.conventional_trivial == 0

    def test_census_counts(self):
        result, sample = reduced_add(
            arr(0.0, 1.0, 4096.0), arr(1.0, 1.0, 1.0), 5, JAM)
        assert sample.total == 3
        assert sample.conventional_trivial == 1
        assert sample.extended_trivial == 2
        assert sample.nontrivial == 1

    def test_operand_collection(self):
        _, sample = reduced_add(arr(1.5, 0.0), arr(2.5, 3.0), 8, JAM,
                                collect_operands=True)
        abits, bbits = sample.nontrivial_operands
        assert len(abits) == 1 and len(bbits) == 1

    def test_broadcasting(self):
        result, sample = reduced_add(arr(1.0, 2.0, 3.0), np.float32(1.0), 23)
        assert result.tolist() == [2.0, 3.0, 4.0]
        assert sample.total == 3


class TestSub:
    def test_basic(self):
        result, sample = reduced_sub(arr(5.0), arr(3.0), 23)
        assert result[0] == 2.0
        assert sample.op == "sub"

    def test_zero_minuend_bypass_negates(self):
        value = np.float32(1.2345678)
        result, _ = reduced_sub(arr(0.0), arr(value), 5, JAM)
        assert result[0] == -value

    def test_matches_add_of_negation(self):
        a, b = arr(3.7, -1.2), arr(1.9, 4.4)
        via_sub, _ = reduced_sub(a, b, 6, JAM)
        via_add, _ = reduced_add(a, -b, 6, JAM)
        assert np.array_equal(via_sub, via_add)


class TestMul:
    def test_full_precision_exact(self):
        result, _ = reduced_mul(arr(3.0), arr(4.0), 23)
        assert result[0] == 12.0

    def test_by_zero_gives_signed_zero(self):
        result, sample = reduced_mul(arr(0.0, -0.0), arr(5.0, 5.0), 5, JAM)
        assert result[0] == 0.0 and np.signbit(result[1])
        assert sample.conventional_trivial == 2

    def test_by_one_keeps_full_precision(self):
        value = np.float32(1.2345678)
        result, _ = reduced_mul(arr(1.0), arr(value), 5, JAM)
        assert result[0] == value

    def test_by_power_of_two_exact(self):
        value = np.float32(1.2345678)
        result, sample = reduced_mul(arr(4.0), arr(value), 5, JAM)
        assert result[0] == np.float32(4.0) * value
        assert sample.extended_trivial == 1

    def test_by_negative_power_of_two(self):
        value = np.float32(3.3)
        result, _ = reduced_mul(arr(-0.5), arr(value), 5, JAM)
        assert result[0] == np.float32(-0.5) * value

    def test_nontrivial_rounds(self):
        a, b = 1.23, 2.34
        result, _ = reduced_mul(arr(a), arr(b), 6, JAM)
        ra = reduce_scalar(np.float32(a), 6, JAM)
        rb = reduce_scalar(np.float32(b), 6, JAM)
        expected = reduce_scalar(np.float32(ra) * np.float32(rb), 6, JAM)
        assert result[0] == expected


class TestDiv:
    def test_never_reduced(self):
        a, b = np.float32(1.2345678), np.float32(3.1415927)
        result, _ = reduced_div(arr(a), arr(b), 3, JAM)
        assert result[0] == a / b

    def test_trivial_census(self):
        _, sample = reduced_div(arr(7.0, 0.0, 7.0), arr(1.0, 5.0, 3.0))
        assert sample.conventional_trivial == 2
        assert sample.extended_trivial == 2

    def test_pow2_divisor_counted_extended(self):
        _, sample = reduced_div(arr(7.0), arr(4.0))
        assert sample.conventional_trivial == 0
        assert sample.extended_trivial == 1

    def test_divide_by_zero_does_not_raise(self):
        result, _ = reduced_div(arr(1.0), arr(0.0))
        assert np.isinf(result[0])


values32 = st.floats(min_value=-(2.0 ** 40), max_value=2.0 ** 40,
                     allow_nan=False, allow_infinity=False, width=32)
precisions = st.integers(min_value=1, max_value=23)


class TestOpProperties:
    @given(values32, values32, precisions)
    @settings(max_examples=250, deadline=None)
    def test_add_error_bounded(self, a, b, precision):
        result, _ = reduced_add(arr(a), arr(b), precision, JAM)
        exact = np.float32(a) + np.float32(b)
        if not np.isfinite(exact) or not np.isfinite(result[0]):
            return
        tolerance = 4.0 * (abs(a) + abs(b) + abs(exact)) * 2.0 ** -precision
        assert abs(float(result[0]) - float(exact)) <= tolerance + 1e-30

    @given(values32, values32, precisions)
    @settings(max_examples=250, deadline=None)
    def test_mul_error_bounded(self, a, b, precision):
        result, _ = reduced_mul(arr(a), arr(b), precision, JAM)
        exact = np.float32(a) * np.float32(b)
        if not np.isfinite(exact) or not np.isfinite(result[0]):
            return
        assert abs(float(result[0]) - float(exact)) <= \
            8.0 * abs(float(exact)) * 2.0 ** -precision + 1e-30

    @given(values32, values32, precisions)
    @settings(max_examples=250, deadline=None)
    def test_add_commutative(self, a, b, precision):
        r1, _ = reduced_add(arr(a), arr(b), precision, JAM)
        r2, _ = reduced_add(arr(b), arr(a), precision, JAM)
        assert np.array_equal(r1, r2, equal_nan=True)

    @given(values32, values32, precisions)
    @settings(max_examples=250, deadline=None)
    def test_mul_commutative_up_to_bypass(self, a, b, precision):
        # The trivial bypass keeps the *other* operand at full precision;
        # when both operands reduce to powers of two the surviving side
        # depends on order, so exact equality only holds for non-trivial
        # lanes.  Either way results agree to reduced-precision accuracy.
        r1, s1 = reduced_mul(arr(a), arr(b), precision, JAM)
        r2, s2 = reduced_mul(arr(b), arr(a), precision, JAM)
        if s1.extended_trivial == 0 and s2.extended_trivial == 0:
            assert np.array_equal(r1, r2, equal_nan=True)
        else:
            x, y = float(r1[0]), float(r2[0])
            if np.isfinite(x) and np.isfinite(y):
                assert abs(x - y) <= \
                    2.0 ** -precision * max(abs(x), abs(y)) + 1e-30

    @given(values32, precisions)
    @settings(max_examples=200, deadline=None)
    def test_add_identity(self, a, precision):
        result, _ = reduced_add(arr(a), arr(0.0), precision, JAM)
        assert result[0] == np.float32(a)

    @given(values32, precisions)
    @settings(max_examples=200, deadline=None)
    def test_mul_identity(self, a, precision):
        result, _ = reduced_mul(arr(a), arr(1.0), precision, JAM)
        assert result[0] == np.float32(a)

    @given(st.lists(values32, min_size=1, max_size=20),
           st.lists(values32, min_size=1, max_size=20), precisions)
    @settings(max_examples=150, deadline=None)
    def test_census_bounds(self, avals, bvals, precision):
        n = min(len(avals), len(bvals))
        _, sample = reduced_add(arr(*avals[:n]), arr(*bvals[:n]),
                                precision, JAM)
        assert 0 <= sample.conventional_trivial <= sample.extended_trivial
        assert sample.extended_trivial <= sample.total == n
