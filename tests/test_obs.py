"""Tests for the observability layer (``repro.obs``)."""

import json

import pytest

from repro.fp import FPContext
from repro.obs import (
    JsonlWriter,
    MetricsRegistry,
    NullSink,
    Tracer,
    read_events,
    render_summary,
    summarize,
    summarize_file,
    validate_event,
    validate_events,
)
from repro.obs.metrics import Gauge, Histogram
from repro.physics import World
from repro.tuning import ControlledSimulation, PrecisionController


def _traced_world(sink, precision=None, census=True):
    ctx = FPContext(dict(precision or {"lcp": 8, "narrow": 8}),
                    census=census)
    world = World(ctx=ctx)
    world.add_ground_plane(0.0)
    world.add_sphere([0.0, 1.0, 0.0], 0.3, 1.0)
    world.add_box([1.5, 0.6, 0.0], [0.3, 0.3, 0.3], 2.0)
    tracer = Tracer(sink)
    tracer.attach(world=world)
    return world, tracer


class TestMetricsRegistry:
    def test_counter_math(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc()
        reg.counter("ops").inc(4)
        assert reg.counter("ops").value == 5
        with pytest.raises(ValueError):
            reg.counter("ops").inc(-1)

    def test_labels_key_distinct_metrics(self):
        reg = MetricsRegistry()
        reg.counter("hits", phase="lcp").inc(2)
        reg.counter("hits", phase="narrow").inc(3)
        snap = reg.snapshot()
        assert snap["hits{phase=lcp}"]["value"] == 2
        assert snap["hits{phase=narrow}"]["value"] == 3

    def test_type_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_gauge_envelope(self):
        gauge = Gauge()
        for value in (5.0, 2.0, 9.0):
            gauge.set(value)
        assert gauge.value == 9.0
        assert gauge.min == 2.0 and gauge.max == 9.0
        assert gauge.updates == 3

    def test_histogram_quantiles_bracket_observations(self):
        hist = Histogram(edges=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.6, 3.0, 7.0):
            hist.observe(value)
        assert hist.count == 5
        assert hist.min == 0.5 and hist.max == 7.0
        assert 0.5 <= hist.quantile(0.5) <= 4.0
        assert hist.quantile(0.0) == pytest.approx(0.5, abs=1.0)
        assert hist.quantile(1.0) == pytest.approx(7.0, abs=1.0)
        assert hist.mean == pytest.approx(sum((0.5, 1.5, 1.6, 3.0, 7.0)) / 5)

    def test_histogram_rejects_bad_edges(self):
        with pytest.raises(ValueError):
            Histogram(edges=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(edges=())

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("ops").inc(2)
        b.counter("ops").inc(3)
        b.counter("only_b").inc(1)
        a.histogram("t", edges=(1.0, 2.0)).observe(0.5)
        b.histogram("t", edges=(1.0, 2.0)).observe(1.5)
        a.merge(b)
        assert a.counter("ops").value == 5
        assert a.counter("only_b").value == 1
        assert a.histogram("t", edges=(1.0, 2.0)).count == 2

    def test_merge_rejects_mismatched_edges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("t", edges=(1.0,)).observe(0.5)
        b.histogram("t", edges=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b)


class TestJsonlRoundTrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "t.jsonl"
        events = [{"kind": "meta", "schema": 1, "i": i} for i in range(5)]
        with JsonlWriter(path) as writer:
            for event in events:
                writer.write(event)
            assert writer.events == 5
        back, skipped = read_events(path)
        assert skipped == 0
        assert back == events

    def test_torn_tail_and_garbage_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"kind": "step", "step": 1})
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('{"kind": "step", "step"')  # torn tail
        back, skipped = read_events(path)
        assert len(back) == 1 and back[0]["step"] == 1
        assert skipped == 2

    def test_append_preserves_existing_stream(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlWriter(path) as writer:
            writer.write({"kind": "a"})
        with JsonlWriter(path) as writer:
            writer.write({"kind": "b"})
        back, _ = read_events(path)
        assert [e["kind"] for e in back] == ["a", "b"]

    def test_closed_writer_refuses(self, tmp_path):
        writer = JsonlWriter(tmp_path / "t.jsonl")
        writer.close()
        with pytest.raises(ValueError):
            writer.write({"kind": "a"})


class TestSchema:
    def test_unknown_kind_rejected(self):
        assert validate_event({"kind": "nope"})

    def test_missing_field_reported(self):
        errors = validate_event({"kind": "controller", "step": 1})
        assert any("missing" in e for e in errors)

    def test_bad_controller_action_reported(self):
        errors = validate_event({
            "kind": "controller", "step": 1, "action": "explode",
            "violation": False, "reexecuted": False, "precisions": {}})
        assert any("action" in e for e in errors)

    def test_validate_events_counts(self):
        good = {"kind": "detection", "step": 1, "phase": "lcp",
                "detail": "x"}
        bad = {"kind": "detection", "step": 1}
        invalid, messages = validate_events([good, bad, bad])
        assert invalid == 2
        assert messages


class TestSchemaV2BackCompat:
    """Schema bumps (v1 -> ... -> v5) must not invalidate old streams."""

    def test_current_version_is_6_and_older_still_supported(self):
        from repro.obs import SCHEMA_VERSION, SUPPORTED_SCHEMA_VERSIONS

        assert SCHEMA_VERSION == 6
        assert set(SUPPORTED_SCHEMA_VERSIONS) == {1, 2, 3, 4, 5, 6}

    @staticmethod
    def _meta(schema):
        return {"kind": "meta", "schema": schema,
                "scenario": "continuous", "steps": 8,
                "precision": {"lcp": 8}, "mode": "jam", "census": True}

    def test_v_previous_meta_still_validates(self):
        assert validate_event(self._meta(1)) == []
        assert validate_event(self._meta(2)) == []
        assert validate_event(self._meta(3)) == []
        assert validate_event(self._meta(4)) == []
        assert validate_event(self._meta(5)) == []
        assert validate_event(self._meta(99))

    def test_recover_action_is_valid_in_v5(self):
        assert validate_event({
            "kind": "controller", "step": 1, "action": "recover",
            "violation": False, "reexecuted": False,
            "precisions": {"lcp": 8}}) == []

    def test_v1_trace_stream_still_validates(self, tmp_path):
        """A stream written under schema 1 (no serve.* kinds) passes the
        v2 validator untouched."""
        path = tmp_path / "v1.jsonl"
        v1_events = [
            self._meta(1),
            {"kind": "detection", "step": 3, "phase": "lcp",
             "detail": "nan"},
            {"kind": "controller", "step": 3, "action": "throttle",
             "violation": True, "reexecuted": False,
             "precisions": {"lcp": 23}},
        ]
        with JsonlWriter(path) as writer:
            for event in v1_events:
                writer.write(event)
        events, skipped = read_events(path)
        invalid, messages = validate_events(events)
        assert (skipped, invalid) == (0, 0), messages

    def test_serve_kinds_are_v2(self):
        from repro.obs.schema import EVENT_KINDS, V2_KINDS

        assert set(V2_KINDS) <= set(EVENT_KINDS)
        assert all(kind.startswith("serve.") for kind in V2_KINDS)

    def test_resilience_kinds_are_v3(self):
        from repro.obs.schema import EVENT_KINDS, V2_KINDS, V3_KINDS

        assert set(V3_KINDS) <= set(EVENT_KINDS)
        assert not set(V3_KINDS) & set(V2_KINDS)
        assert all(kind.startswith("serve.") for kind in V3_KINDS)

    def test_serve_recover_event_validates(self):
        good = {"kind": "serve.recover", "session": "s1", "rung": 1,
                "outcome": "degraded", "reason": "guard tripped",
                "wall": 0.02, "step": 40}
        assert validate_event(good) == []
        assert validate_event(dict(good, outcome="vanished"))
        assert validate_event({"kind": "serve.recover", "session": "s1"})

    def test_serve_drain_event_validates(self):
        good = {"kind": "serve.drain", "sessions": 3, "journaled": 3,
                "completed": True, "wall": 0.5}
        assert validate_event(good) == []
        assert validate_event({"kind": "serve.drain", "sessions": 3})

    def test_serve_request_event_validates(self):
        good = {"kind": "serve.request", "op": "step", "session": "s1",
                "ok": True, "wall": 0.01}
        assert validate_event(good) == []
        # session may be None (e.g. a rejected create)
        assert validate_event(dict(good, session=None)) == []
        assert validate_event(dict(good, op="warp"))  # unknown op
        assert validate_event({"kind": "serve.request", "op": "step"})

    def test_serve_batch_and_evict_validate(self):
        assert validate_event({"kind": "serve.batch", "batch": 1,
                               "sessions": 3, "steps": 9,
                               "wall": 0.02}) == []
        assert validate_event({"kind": "serve.evict", "session": "s1",
                               "reason": "budget_exceeded",
                               "step": 40}) == []
        assert validate_event({"kind": "serve.evict", "session": "s1"})


class TestTracerStepEvents:
    def test_step_events_are_schema_valid(self, tmp_path):
        path = tmp_path / "t.jsonl"
        world, tracer = _traced_world(JsonlWriter(path))
        for _ in range(5):
            world.step()
        tracer.close()
        events, skipped = read_events(path)
        assert skipped == 0
        steps = [e for e in events if e["kind"] == "step"]
        assert len(steps) == 5
        invalid, messages = validate_events(events)
        assert invalid == 0, messages

    def test_step_event_contents(self):
        sink = NullSink()
        captured = []
        sink.write = lambda e: captured.append(e)
        world, tracer = _traced_world(sink)
        for _ in range(3):
            world.step()
        steps = [e for e in captured if e["kind"] == "step"]
        assert [e["step"] for e in steps] == [0, 1, 2]
        event = steps[-1]
        assert event["phases"]["lcp"]["bits"] == 8
        assert event["phases"]["narrow"]["bits"] == 8
        for name in ("integrate", "broad", "narrow", "islands", "lcp"):
            assert event["phases"][name]["seconds"] >= 0.0
        assert event["wall"] > 0.0
        # Census totals are per-step deltas, not cumulative.
        total_ops = sum(e["census"]["total"] for e in steps)
        assert total_ops == sum(
            c.total for c in world.ctx.stats.values())
        assert event["energy"]["delta_rel"] is not None

    def test_first_step_energy_delta_is_null(self):
        sink = NullSink()
        captured = []
        sink.write = lambda e: captured.append(e)
        world, tracer = _traced_world(sink)
        world.step()
        step0 = [e for e in captured if e["kind"] == "step"][0]
        assert step0["energy"]["delta_rel"] is None
        assert step0["energy"]["violation"] is False

    def test_lut_hits_counted_below_coverage_width(self):
        sink = NullSink()
        captured = []
        sink.write = lambda e: captured.append(e)
        world, tracer = _traced_world(sink, precision={"lcp": 4,
                                                       "narrow": 4})
        for _ in range(3):
            world.step()
        steps = [e for e in captured if e["kind"] == "step"]
        census = steps[-1]["census"]
        # At 4 bits every non-trivial add/sub/mul is LUT-covered.
        assert census["lut_hits"] > 0
        assert census["lut_hits"] <= census["nontrivial"]

    def test_census_free_context_reports_zero_census(self):
        sink = NullSink()
        captured = []
        sink.write = lambda e: captured.append(e)
        world, tracer = _traced_world(sink, census=False)
        world.step()
        step0 = [e for e in captured if e["kind"] == "step"][0]
        assert step0["census"]["total"] == 0

    def test_metrics_registry_updated(self):
        world, tracer = _traced_world(NullSink())
        for _ in range(4):
            world.step()
        assert tracer.registry.counter("steps").value == 4
        assert tracer.registry.histogram("step.seconds").count == 4
        snap = tracer.registry.snapshot()
        assert snap["phase.bits{phase=lcp}"]["value"] == 8

    def test_detached_world_has_zero_overhead_hooks(self):
        world, tracer = _traced_world(NullSink())
        world.observer = None  # detach
        world.step()
        assert tracer.registry.counter("steps").value == 0


class TestControllerEvents:
    def test_throttle_and_decay_stream(self):
        captured = []
        sink = NullSink()
        sink.write = lambda e: captured.append(e)
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 6})
        Tracer(sink).attach(controller=controller)
        controller.observe(0.5, step=0)     # violation -> throttle
        controller.observe(0.01, step=1)    # stable -> decay
        controller.observe(None, step=2)    # no signal -> decay
        actions = [e["action"] for e in captured
                   if e["kind"] == "controller"]
        assert actions == ["throttle", "decay", "decay"]
        assert captured[0]["precisions"]["lcp"] == 23
        assert captured[1]["precisions"]["lcp"] == 22

    def test_hold_at_register_floor(self):
        captured = []
        sink = NullSink()
        sink.write = lambda e: captured.append(e)
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 6})
        Tracer(sink).attach(controller=controller)
        controller.observe(0.0, step=0)  # already at the floor
        assert captured[-1]["action"] == "hold"


class TestRecoveryEvents:
    def test_incident_log_streams_through_observer(self):
        from repro.robustness import IncidentLog

        captured = []
        sink = NullSink()
        sink.write = lambda e: captured.append(e)
        log = IncidentLog()
        Tracer(sink).attach(log=log)
        log.detection(3, "lcp", "nan in velocities")
        log.recovery(3, 0, "recovered", "attempt 1")
        kinds = [e["kind"] for e in captured]
        assert kinds == ["detection", "recovery"]
        assert captured[1]["rung"] == 0
        assert captured[1]["action"] == "retry-full-precision"
        assert captured[1]["outcome"] == "recovered"

    def test_guarded_campaign_trace_is_schema_valid(self, tmp_path):
        from repro.robustness import run_campaign

        path = tmp_path / "campaign.jsonl"
        tracer = Tracer(JsonlWriter(path))
        run_campaign("continuous", steps=10, scale=0.4,
                     inject_rate=0.02, seed=13, observer=tracer)
        tracer.close()
        events, skipped = read_events(path)
        assert skipped == 0
        invalid, messages = validate_events(events)
        assert invalid == 0, messages
        assert any(e["kind"] == "step" for e in events)


class TestSweepEvents:
    def test_sweep_jobs_streamed(self):
        from repro.perf.sweep import SweepJob, SweepRunner

        captured = []
        sink = NullSink()
        sink.write = lambda e: captured.append(e)
        runner = SweepRunner(1, observer=Tracer(sink))
        runner.run([SweepJob(key=("a", 1), fn=len, args=("xyz",))])
        kinds = [e["kind"] for e in captured]
        assert kinds == ["sweep_job", "sweep"]
        assert captured[0]["key"] == ["a", 1]
        assert captured[0]["ok"] is True
        assert captured[1]["jobs"] == 1


class TestSummarize:
    def test_summarize_controlled_run(self, tmp_path):
        path = tmp_path / "t.jsonl"
        ctx = FPContext({"lcp": 8, "narrow": 8})
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0.0, 1.0, 0.0], 0.3, 1.0)
        controller = PrecisionController(ctx, {"lcp": 8, "narrow": 8})
        tracer = Tracer(JsonlWriter(path))
        tracer.meta(scenario="unit", steps=6, precision={"lcp": 8},
                    mode="jam", census=True)
        tracer.attach(world=world, controller=controller)
        ControlledSimulation(world, controller).run(6)
        tracer.close()

        summary = summarize_file(path)
        assert summary["steps"] >= 6
        assert summary["invalid_events"] == 0
        assert summary["step_seconds"]["p95"] >= \
            summary["step_seconds"]["p50"] > 0
        assert summary["phase_bits"]["lcp"]
        assert summary["controller_actions"]
        text = render_summary(summary)
        assert "step time" in text
        assert "precision histogram" in text
        assert "unit" in text

    def test_summarize_tolerates_empty_stream(self):
        summary = summarize([])
        assert summary["steps"] == 0
        assert "step time" in render_summary(summary)

    def test_summarize_reports_schema_problems(self):
        summary = summarize([{"kind": "step", "step": 1}])
        assert summary["invalid_events"] == 1
        assert summary["schema_problems"]
