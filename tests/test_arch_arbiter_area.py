"""Tests for arbitration and the area model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch import params
from repro.arch.arbiter import DIV_WINDOW_CYCLES, RoundRobinArbiter
from repro.arch.area import (
    cores_in_same_area,
    die_area_mm2,
    per_core_area_mm2,
)
from repro.arch.l1fpu import CONJOIN, LOOKUP_TRIV, REDUCED_TRIV, mini_fpu


class TestArbiter:
    def test_private_fpu_no_wait(self):
        arb = RoundRobinArbiter(1)
        assert all(arb.pipelined_wait(c) == 0 for c in range(10))
        assert all(arb.divide_wait(c) == 0 for c in range(10))

    def test_slot_alignment(self):
        arb = RoundRobinArbiter(4, slot=2)
        assert arb.pipelined_wait(2) == 0
        assert arb.pipelined_wait(3) == 3
        assert arb.pipelined_wait(6) == 0

    def test_wait_bounded_by_period(self):
        arb = RoundRobinArbiter(8, slot=5)
        for cycle in range(40):
            assert 0 <= arb.pipelined_wait(cycle) < 8

    def test_expected_pipelined_wait(self):
        arb = RoundRobinArbiter(4)
        empirical = sum(arb.pipelined_wait(c) for c in range(4)) / 4
        assert arb.expected_pipelined_wait() == pytest.approx(empirical)

    def test_divide_window_open_inside(self):
        arb = RoundRobinArbiter(4, slot=1)
        # slot 1's window covers cycles 3, 4, 5 of each 12-cycle period
        assert arb.divide_wait(3) == 0
        assert arb.divide_wait(4) == 0
        assert arb.divide_wait(5) == 0
        assert arb.divide_wait(6) == 9  # wait till cycle 15

    def test_divide_window_period(self):
        arb = RoundRobinArbiter(2, slot=0)
        period = DIV_WINDOW_CYCLES * 2
        for cycle in range(20):
            assert arb.divide_wait(cycle) == arb.divide_wait(cycle + period)

    def test_expected_divide_wait_matches_enumeration(self):
        arb = RoundRobinArbiter(4, slot=3)
        period = DIV_WINDOW_CYCLES * 4
        empirical = sum(arb.divide_wait(c) for c in range(period)) / period
        assert arb.expected_divide_wait() == pytest.approx(empirical)

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            RoundRobinArbiter(0)
        with pytest.raises(ValueError):
            RoundRobinArbiter(4, slot=4)

    @given(st.integers(min_value=1, max_value=8),
           st.integers(min_value=0, max_value=200))
    @settings(max_examples=150, deadline=None)
    def test_wait_lands_on_owned_slot(self, cores, cycle):
        for slot in range(cores):
            arb = RoundRobinArbiter(cores, slot)
            grant = cycle + arb.pipelined_wait(cycle)
            assert grant % cores == slot


class TestInterconnect:
    def test_table7_values(self):
        assert params.interconnect_latency(1) == 0
        assert params.interconnect_latency(2) == 0
        assert params.interconnect_latency(4) == 1
        assert params.interconnect_latency(8) == 2

    def test_unsupported_degree(self):
        with pytest.raises(ValueError):
            params.interconnect_latency(3)


class TestAreaModel:
    def test_baseline_die_areas_match_paper(self):
        # "472 mm2 for the 1.5 mm2 FPU, 408 ... 376 ... 328"
        assert die_area_mm2(1.5) == pytest.approx(472.32, abs=0.5)
        assert die_area_mm2(1.0) == pytest.approx(408.32, abs=0.5)
        assert die_area_mm2(0.75) == pytest.approx(376.32, abs=0.5)
        assert die_area_mm2(0.375) == pytest.approx(328.32, abs=0.5)

    def test_per_core_area_private(self):
        area = per_core_area_mm2(1.0, 1, CONJOIN)
        assert area == pytest.approx(2.0 + 0.19 + 1.0)

    def test_sharing_reduces_per_core_area(self):
        assert per_core_area_mm2(1.0, 4, CONJOIN) < \
            per_core_area_mm2(1.0, 1, CONJOIN)

    def test_l1_overhead_added(self):
        base = per_core_area_mm2(1.0, 4, CONJOIN)
        lookup = per_core_area_mm2(1.0, 4, LOOKUP_TRIV)
        assert lookup == pytest.approx(base + 0.0079 + 0.080)

    def test_baseline_core_count(self):
        for area in params.FPU_AREAS_MM2:
            assert cores_in_same_area(area, 1, CONJOIN) == 128

    def test_sharing_increases_core_count(self):
        counts = [cores_in_same_area(1.5, n, CONJOIN) for n in (1, 2, 4, 8)]
        assert counts == sorted(counts)
        assert counts[-1] > 160  # paper Figure 6a peaks near 176-200

    def test_core_count_multiple_of_sharing(self):
        for n in (2, 4, 8):
            assert cores_in_same_area(1.0, n, LOOKUP_TRIV) % n == 0

    def test_mini_fpu_packs_fewer_cores(self):
        assert cores_in_same_area(1.0, 4, mini_fpu(1)) < \
            cores_in_same_area(1.0, 4, LOOKUP_TRIV)

    def test_shared_mini_recovers_area(self):
        assert cores_in_same_area(1.0, 4, mini_fpu(4)) > \
            cores_in_same_area(1.0, 4, mini_fpu(1))

    def test_larger_fpu_bigger_sharing_gain(self):
        def gain(fpu):
            return (cores_in_same_area(fpu, 8, CONJOIN)
                    / cores_in_same_area(fpu, 1, CONJOIN))
        assert gain(1.5) > gain(0.375)

    def test_invalid_sharing(self):
        with pytest.raises(ValueError):
            per_core_area_mm2(1.0, 0, CONJOIN)


class TestL1AreaOverheads:
    def test_table8_values(self):
        assert CONJOIN.area_overhead_mm2(1.0) == 0.0
        assert REDUCED_TRIV.area_overhead_mm2(1.0) == \
            pytest.approx(0.0079)
        assert LOOKUP_TRIV.area_overhead_mm2(1.0) == \
            pytest.approx(0.0079 + 0.080)
        assert mini_fpu(1).area_overhead_mm2(1.0) == \
            pytest.approx(0.0079 + 0.6)
        assert mini_fpu(2).area_overhead_mm2(1.0) == \
            pytest.approx(0.0079 + 0.3)

    def test_mini_scales_with_fpu_area(self):
        assert mini_fpu(1).area_overhead_mm2(0.375) == \
            pytest.approx(0.0079 + 0.6 * 0.375)
