"""Tests for the PhysicsBench-equivalent workloads."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.workloads import (
    SCENARIO_ABBREVIATIONS,
    SCENARIO_NAMES,
    build,
    default_steps,
)


class TestRoster:
    def test_eight_scenarios(self):
        assert len(SCENARIO_NAMES) == 8

    def test_paper_order(self):
        assert SCENARIO_NAMES[0] == "breakable"
        assert SCENARIO_NAMES[-1] == "ragdoll"

    def test_abbreviations_cover_all(self):
        assert set(SCENARIO_ABBREVIATIONS) == set(SCENARIO_NAMES)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            build("quake")

    def test_unknown_scenario_error_lists_valid_names(self):
        from repro.workloads import UnknownScenarioError

        with pytest.raises(UnknownScenarioError) as err:
            build("quake")
        message = str(err.value)
        assert "valid scenarios" in message
        for name in SCENARIO_NAMES:
            assert name in message
        # still a ValueError, so pre-existing callers keep working
        assert isinstance(err.value, ValueError)

    def test_mix_alias(self):
        world = build("mix", ctx=FPContext(census=False), scale=0.4)
        assert world.bodies.count > 0

    def test_default_steps(self):
        assert default_steps() == 90
        assert default_steps(10) == 30


@pytest.mark.parametrize("name", SCENARIO_NAMES)
class TestEachScenario:
    def test_builds_and_steps(self, name):
        world = build(name, ctx=FPContext(census=False), scale=0.4)
        for _ in range(12):
            world.step()
        n = world.bodies.count
        if n:
            assert np.isfinite(world.bodies.pos[:n]).all()
            assert np.isfinite(world.bodies.linvel[:n]).all()

    def test_monitor_active(self, name):
        world = build(name, ctx=FPContext(census=False), scale=0.4)
        world.step()
        assert len(world.monitor.records) == 1
        assert np.isfinite(world.monitor.records[0].total)

    def test_scale_changes_size(self, name):
        small = build(name, ctx=FPContext(census=False), scale=0.4)
        large = build(name, ctx=FPContext(census=False), scale=1.5)
        def size(world):
            particles = sum(c.particle_count for c in world.cloths)
            return world.bodies.count + particles
        assert size(large) > size(small)


class TestScenarioCharacter:
    def test_breakable_has_wall_and_projectile(self):
        world = build("breakable", ctx=FPContext(census=False))
        speeds = np.linalg.norm(
            world.bodies.linvel[:world.bodies.count], axis=1)
        assert (speeds > 10).sum() == 1  # exactly one projectile

    def test_deformable_has_cloth(self):
        world = build("deformable", ctx=FPContext(census=False))
        assert len(world.cloths) == 1

    def test_explosions_scheduled(self):
        world = build("explosions", ctx=FPContext(census=False))
        assert len(world.explosions) == 1

    def test_explosion_injects_energy(self):
        world = build("explosions", ctx=FPContext(census=False), scale=0.5)
        trigger = world.explosions[0].trigger_step
        for _ in range(trigger + 2):
            world.step()
        assert world.monitor.injected_total > 0.0

    def test_highspeed_is_fast(self):
        world = build("highspeed", ctx=FPContext(census=False))
        speeds = np.linalg.norm(
            world.bodies.linvel[:world.bodies.count], axis=1)
        assert speeds.max() > 30.0

    def test_periodic_uses_joints(self):
        world = build("periodic", ctx=FPContext(census=False))
        assert len(world.joints.ball_joints) >= 4

    def test_ragdoll_articulated(self):
        world = build("ragdoll", ctx=FPContext(census=False))
        # two ragdolls, five ball joints each
        assert len(world.joints.ball_joints) == 10
        assert world.bodies.count == 12

    def test_everything_mixes_features(self):
        world = build("everything", ctx=FPContext(census=False))
        assert len(world.cloths) == 1
        assert len(world.joints.ball_joints) >= 5
        assert len(world.explosions) == 1

    def test_continuous_staggered_arrivals(self):
        world = build("continuous", ctx=FPContext(census=False))
        heights = world.bodies.pos[:world.bodies.count, 1]
        assert heights.max() - heights.min() > 3.0


class TestEnergySanity:
    @pytest.mark.parametrize("name", ["continuous", "periodic", "ragdoll"])
    def test_short_run_energy_bounded(self, name):
        world = build(name, ctx=FPContext(census=False), scale=0.5)
        for _ in range(45):
            world.step()
        conserved = world.monitor.conserved_series()
        assert np.isfinite(conserved).all()
        # No spontaneous energy explosion.
        assert conserved[-1] < conserved[0] + 0.5 * abs(conserved[0]) + 5.0


class TestBonusWorkload:
    def test_capsule_ragdolls_simulate(self):
        world = build("ragdoll_capsules", ctx=FPContext(census=False))
        for _ in range(60):
            world.step()
        n = world.bodies.count
        assert n == 12  # two 6-body figures
        assert np.isfinite(world.bodies.pos[:n]).all()

    def test_uses_capsules_and_hinges(self):
        from repro.physics.shapes import ShapeType
        world = build("ragdoll_capsules", ctx=FPContext(census=False))
        shapes = {g.shape for g in world.geoms.geoms}
        assert ShapeType.CAPSULE in shapes
        assert len(world.joints.hinge_joints) == 4  # two knees per figure

    def test_not_in_paper_roster(self):
        assert "ragdoll_capsules" not in SCENARIO_NAMES
