"""Tests for the design-space optimizer (``repro.design``).

The search fixtures run tiny workloads (12 steps at 0.4 scale) so the
whole module stays inside the tier-1 budget; results are shared through
the module-scoped fixture and the run-cache, so the expensive cold
searches execute once.
"""

import json
import pathlib
import random
import uuid

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.__main__ import main
from repro.design import (
    ARTIFACT_VERSION,
    DESIGN_CHOICES,
    Budgets,
    DesignPoint,
    DesignQuery,
    DesignSpace,
    DesignSpaceError,
    ParetoFront,
    design_by_name,
    dominates,
    paper_points,
    run_search,
)
from repro.experiments.runcache import cached_json
from repro.obs import NullSink, Tracer


SMALL = {"scenario": "continuous", "steps": 12, "scale": 0.4,
         "trace_length": 2000, "generations": 2, "population": 8,
         "seed": 7, "budget_area": 4.0, "budget_energy": 1.0}


def _capture_tracer():
    captured = []
    sink = NullSink()
    sink.write = lambda event: captured.append(event)
    return Tracer(sink), captured


@pytest.fixture(scope="module")
def small_result():
    """One small seeded search, shared by every test that reads a front."""
    return run_search(DesignQuery.from_mapping(SMALL), workers=1)


class TestDominance:
    def test_strictly_better_dominates(self):
        assert dominates((1.0, 1.0, -2.0, -3), (2.0, 1.0, -2.0, -3))

    def test_equal_vectors_do_not_dominate(self):
        v = (1.0, 2.0, -3.0, -4)
        assert not dominates(v, v)

    def test_tradeoff_is_incomparable(self):
        a, b = (1.0, 5.0, -1.0, -1), (2.0, 1.0, -1.0, -1)
        assert not dominates(a, b) and not dominates(b, a)

    @given(st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5),
                  st.integers(-5, 0), st.integers(-5, 0)),
        min_size=1, max_size=24))
    @settings(max_examples=60, deadline=None)
    def test_front_never_holds_a_dominated_member(self, vectors):
        front = ParetoFront()
        for i, vec in enumerate(vectors):
            entry = _FakeEval(key=f"p{i}", vec=tuple(float(x) for x in vec))
            front.add(entry)
        members = front.members()
        assert members, "a non-empty input always leaves a front"
        for a in members:
            for b in members:
                assert not dominates(a.objectives(), b.objectives())
        # every input vector is covered by (equal to or dominated by)
        # something on the front
        for vec in vectors:
            assert front.covers(tuple(float(x) for x in vec))


class _FakeEval:
    """Minimal duck-typed front entry for property tests."""

    def __init__(self, key, vec):
        self._key, self._vec = key, vec
        self.point = self

    def key(self):
        return self._key

    def objectives(self):
        return self._vec


class TestValidation:
    def test_negative_area_rejected(self):
        with pytest.raises(DesignSpaceError) as err:
            DesignQuery.from_mapping({**SMALL, "budget_area": -1.0})
        assert "budget_area" in err.value.detail

    def test_zero_generations_rejected(self):
        with pytest.raises(DesignSpaceError) as err:
            DesignQuery.from_mapping({**SMALL, "generations": 0})
        assert "generations" in err.value.detail

    def test_unknown_design_lists_valid_names(self):
        with pytest.raises(DesignSpaceError) as err:
            design_by_name("bogus")
        detail = err.value.detail
        assert "bogus" in detail
        for name in DESIGN_CHOICES:
            assert name in detail

    def test_unknown_query_field_rejected(self):
        with pytest.raises(DesignSpaceError) as err:
            DesignQuery.from_mapping({**SMALL, "frobnicate": 1})
        assert "frobnicate" in err.value.detail

    def test_budgets_validate(self):
        with pytest.raises(DesignSpaceError):
            Budgets(area_mm2=-2.0).validate()
        Budgets(area_mm2=1.0, energy_nj=None).validate()

    def test_cli_exit_2_with_typed_messages(self, capsys, tmp_path):
        cases = [
            (["design", "continuous", "--budget-area", "-1"],
             "budget_area"),
            (["design", "continuous", "--generations", "0"],
             "generations"),
            (["design", "continuous", "--designs", "bogus"],
             "conjoin"),  # message lists the valid designs
        ]
        for argv, needle in cases:
            assert main(argv + ["--out", str(tmp_path)]) == 2
            err = capsys.readouterr().err
            assert "error:" in err and needle in err


class TestSearch:
    def test_front_is_valid_and_verified(self, small_result):
        front = small_result.front
        assert front.members(), "small search must find a feasible front"
        assert front.validate() == []
        for member in front.members():
            assert member.verified, "front members are cold-search verified"
            assert member.believable

    def test_front_respects_budgets(self, small_result):
        budgets = Budgets(area_mm2=SMALL["budget_area"],
                          energy_nj=SMALL["budget_energy"])
        for member in small_result.front.members():
            assert budgets.admits(member.area_mm2, member.energy_nj)

    def test_paper_points_on_or_dominated(self, small_result):
        statuses = {p["status"] for p in small_result.paper}
        assert statuses <= {"on_front", "dominated", "infeasible"}
        # the conjoined design at the paper's preset precisions is the
        # strongest fixed point; it must never be left uncovered
        assert any(p["status"] in ("on_front", "dominated")
                   for p in small_result.paper)

    def test_workers_do_not_change_the_front(self, small_result):
        again = run_search(DesignQuery.from_mapping(SMALL), workers=2)
        assert again.payload() == small_result.payload()

    def test_front_stable_under_member_order_shuffle(self, small_result):
        members = list(small_result.front.members())
        rng = random.Random(13)
        for _ in range(5):
            shuffled = members[:]
            rng.shuffle(shuffled)
            front = ParetoFront()
            for member in shuffled:
                front.add(member)
            assert [m.point.key() for m in front.members()] == \
                [m.point.key() for m in small_result.front.members()]

    def test_paper_points_match_table8_presets(self):
        points = paper_points("continuous")
        names = [p.design for p in points]
        assert "conjoin" in names and "mini_fpu_1" in names
        for p in points:
            assert p.cores_per_fpu == 4

    def test_mutate_and_crossover_stay_in_space(self):
        space = DesignSpace(scenario="continuous", steps=12, scale=0.4,
                            trace_length=2000)
        rng = random.Random(3)
        point = space.sample(rng, 1)[0]
        for _ in range(50):
            other = space.sample(rng, 1)[0]
            for child in (space.mutate(point, rng),
                          space.crossover(point, other, rng)):
                assert child.design in space.designs
                assert child.cores_per_fpu in space.sharing
                assert space.bits_lo <= child.lcp_bits <= space.bits_hi
                assert space.bits_lo <= child.narrow_bits <= space.bits_hi
            point = other

    def test_artifact_round_trip(self, small_result, tmp_path):
        path = pathlib.Path(small_result.write_artifact(tmp_path))
        assert path.name.startswith("DESIGN_") and path.suffix == ".json"
        payload = json.loads(path.read_text())
        assert payload["version"] == ARTIFACT_VERSION
        assert payload == small_result.payload()

    def test_query_canonicalization_is_stable(self):
        sparse = DesignQuery.from_mapping(
            {"scenario": "continuous", "seed": 7})
        full = DesignQuery.from_mapping(sparse.canonical())
        assert sparse.cache_key() == full.cache_key()

    def test_point_round_trip(self):
        point = DesignPoint(design="conjoin", cores_per_fpu=4,
                            lcp_bits=3, narrow_bits=6)
        assert DesignPoint.from_dict(point.to_dict()) == point


class TestRunCache:
    def test_cached_json_memoizes(self):
        calls = []

        def compute():
            calls.append(1)
            return {"x": len(calls)}

        # unique per run: the disk layer outlives the process, and a
        # stale entry would satisfy the lookup without calling compute
        params = {"probe": f"design-test-memo-{uuid.uuid4().hex}"}
        first = cached_json("design_test", params, compute)
        second = cached_json("design_test", params, compute)
        assert first == second == {"x": 1}
        assert len(calls) == 1

    def test_no_cache_recomputes(self):
        calls = []

        def compute():
            calls.append(1)
            return {"x": len(calls)}

        params = {"probe": f"design-test-nocache-{uuid.uuid4().hex}"}
        cached_json("design_test", params, compute, use_cache=False)
        cached_json("design_test", params, compute, use_cache=False)
        assert len(calls) == 2


class TestServeDesign:
    def test_served_query_matches_cli_artifact_and_caches(self, tmp_path):
        from repro.serve import Client, ServiceConfig, start_in_thread
        from repro.serve.client import ServeClientError

        tracer, events = _capture_tracer()
        handle = start_in_thread(ServiceConfig(port=0, workers=1),
                                 observer=tracer)
        try:
            with Client("127.0.0.1", handle.port) as client:
                first = client.design(SMALL, timeout=180)
                repeat = client.design(SMALL, timeout=180)
                assert first["ok"] and not first["cached"]
                assert repeat["ok"] and repeat["cached"]
                assert repeat["design"] == first["design"]
                with pytest.raises(ServeClientError) as err:
                    client.design({**SMALL, "budget_area": -1}, timeout=30)
                assert err.value.code == "bad_request"
                stats = client.request({"op": "stats"})
                assert stats["designs_total"] == 2
                assert stats["design_cache_hits"] == 1
        finally:
            handle.stop()

        # the served payload is byte-identical to the CLI artifact
        result = run_search(DesignQuery.from_mapping(SMALL), workers=1)
        path = result.write_artifact(tmp_path)
        assert first["design"] == json.loads(
            pathlib.Path(path).read_text())

        design_events = [e for e in events if e["kind"] == "serve.design"]
        assert [e["cached"] for e in design_events] == [False, True]
        assert all(e["ok"] and e["front"] > 0 for e in design_events)
        assert len({e["query"] for e in design_events}) == 1
