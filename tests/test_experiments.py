"""Integration tests for the experiment pipelines (tiny configurations)."""

import numpy as np
import pytest

from repro.experiments import (
    common,
    figure5,
    figure6,
    figure7,
    figure8,
    report,
    runcache,
    table1,
    table4,
    table5,
    table8,
)

TINY = dict(steps=12, scale=0.4)


@pytest.fixture(scope="module")
def tiny_workloads():
    tuned = {name: {"lcp": 6, "narrow": 8}
             for name in ("continuous", "highspeed")}
    return common.all_workloads(scenarios=list(tuned), tuned_map=tuned,
                                **TINY)


class TestRunCache:
    def test_census_returns_stats(self):
        # Ragdolls have joint rows from step 0, guaranteeing LCP work.
        stats = runcache.census_stats("ragdoll", {"lcp": 6}, "jam",
                                      steps=8, scale=0.4)
        assert any(phase == "lcp" for phase, _op in stats)

    def test_cache_hit_is_identical(self):
        first = runcache.census_stats("continuous", {"lcp": 6}, "jam",
                                      steps=8, scale=0.4)
        second = runcache.census_stats("continuous", {"lcp": 6}, "jam",
                                       steps=8, scale=0.4)
        assert first is second  # memory cache

    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runcache._MEMORY_CACHE.clear()
        first = runcache.census_stats("continuous", None, "jam", steps=5,
                                      scale=0.4)
        runcache._MEMORY_CACHE.clear()
        second = runcache.census_stats("continuous", None, "jam", steps=5,
                                       scale=0.4)
        key = next(iter(second))
        assert second[key].total == first[key].total

    def test_memo_run_collects_memo_stats(self):
        stats = runcache.census_stats("continuous", {"lcp": 4}, "rn",
                                      steps=8, scale=0.4, memo=True)
        lookups = sum(c.memo_lookups for c in stats.values())
        assert lookups > 0


class TestWorkloadAssembly:
    def test_shapes(self, tiny_workloads):
        for scenario, phases in tiny_workloads.items():
            for phase in ("lcp", "narrow"):
                wl = phases[phase]
                shares = sum(p.share for p in wl.ops.values())
                assert shares == pytest.approx(1.0, abs=1e-6) or \
                    shares == 0.0
                for profile in wl.ops.values():
                    assert 0 <= profile.conv_trivial_rate <= 1
                    assert 0 <= profile.ext_trivial_rate <= 1

    def test_fp_fraction_from_paper(self, tiny_workloads):
        wl = tiny_workloads["highspeed"]["lcp"]
        assert wl.fp_fraction == 0.31
        assert tiny_workloads["highspeed"]["narrow"].fp_fraction == 0.13


class TestTable1:
    def test_preset_covers_all_scenarios(self):
        from repro.workloads import SCENARIO_NAMES
        assert set(table1.PRESET_PRECISIONS) == set(SCENARIO_NAMES)
        for phases in table1.PRESET_PRECISIONS.values():
            assert 1 <= phases["lcp"] <= 23
            assert 1 <= phases["narrow"] <= 23

    def test_paper_table_complete(self):
        from repro.workloads import SCENARIO_NAMES
        assert set(table1.PAPER_TABLE1) == set(SCENARIO_NAMES)

    def test_tuned_precisions_fallback(self):
        tuned = table1.tuned_precisions()
        assert tuned == table1.PRESET_PRECISIONS
        tuned["breakable"]["lcp"] = -1  # mutation must not leak
        assert table1.PRESET_PRECISIONS["breakable"]["lcp"] > 0

    def test_compute_small_grid(self):
        result = table1.compute_table1(steps=10, scale=0.4,
                                       scenarios=["continuous"],
                                       use_cache=False)
        bits = result.independent["continuous"]["lcp"]
        assert set(bits) == {"rn", "jam", "trunc"}
        assert all(1 <= b <= 23 for b in bits.values())
        assert 1 <= result.narrow_combined["continuous"] <= 23


class TestTable4:
    def test_compute_rows(self):
        tuned = {"continuous": {"lcp": 4, "narrow": 8}}
        rows = table4.compute_table4(scenarios=["continuous"],
                                     tuned_map=tuned, steps=10, scale=0.4)
        row = rows["continuous"]
        assert 0 <= row.trivial_add_full <= 100
        # reduced precision + new conditions never lose trivialization
        assert row.trivial_add_reduced >= row.trivial_add_full - 10
        rendered = table4.render(rows)
        assert "Con" in rendered

    def test_paper_values_present(self):
        from repro.workloads import SCENARIO_NAMES
        assert set(table4.PAPER_TABLE4) == set(SCENARIO_NAMES)


class TestTable5:
    def test_result_fields(self):
        result = table5.compute_table5()
        assert result.area_reduction == pytest.approx(0.77, abs=0.01)
        assert result.mul_exact_fraction > 0.95
        assert result.add_exact_fraction > 0.5
        assert result.add_max_ulp <= 2.0
        assert "77%" in table5.render(result)


class TestFigures:
    def test_figure5_grid(self, tiny_workloads):
        result = figure5.compute_figure5(workloads=tiny_workloads,
                                         trace_length=2000)
        key = (1.5, "lookup_triv", 4)
        assert key in result.improvement["lcp"]
        # conjoin at private FPU is the baseline by construction
        assert result.improvement["lcp"][(1.5, "conjoin", 1)] == \
            pytest.approx(0.0, abs=1e-9)
        assert "Figure 5" in figure5.render(result, "lcp")
        assert "paper" in figure5.paper_summary(result)

    def test_figure6_cores(self):
        counts = figure6.compute_core_counts()
        assert counts[(1.5, "conjoin", 1)] == 128
        assert counts[(1.5, "conjoin", 8)] > 160
        assert counts[(1.0, "mini_fpu_1", 4)] < \
            counts[(1.0, "lookup_triv", 4)]
        assert "Figure 6a" in figure6.render_cores(counts)

    def test_figure6_energy(self, tiny_workloads):
        result = figure6.compute_energy(workloads=tiny_workloads)
        for phase in ("lcp", "narrow"):
            c = result.energy_reduction[phase]["conv_triv"]
            r = result.energy_reduction[phase]["reduced_triv"]
            lut = result.energy_reduction[phase]["lookup_triv"]
            assert c <= r <= lut
        assert "Figure 6b" in figure6.render_energy(result)

    def test_figure7(self, tiny_workloads):
        result = figure7.compute_figure7(workloads=tiny_workloads,
                                         trace_length=2000)
        # mini shared by 4 requires L2 sharing >= 4
        assert (1.5, "mini_fpu_4", 2) not in result.improvement["lcp"]
        assert (1.5, "mini_fpu_4", 4) in result.improvement["lcp"]
        assert "Figure 7" in figure7.render(result, "lcp")

    def test_figure8(self, tiny_workloads):
        result = figure8.compute_figure8(workloads=tiny_workloads,
                                         trace_length=2000)
        series = result.improvement["lcp"]
        # more latency always hurts
        for area in (1.5, 0.375):
            assert series[(area, 1)] > series[(area, 4)]
        assert "Figure 8" in figure8.render(result, "lcp")


class TestTable8:
    def test_rows(self, tiny_workloads):
        rows = table8.compute_table8(workloads=tiny_workloads,
                                     trace_length=2000)
        names = [row.design for row in rows]
        assert names == ["conjoin", "conv_triv", "reduced_triv",
                         "lookup_triv", "mini_fpu_1"]
        ipcs = [row.lcp_ipc for row in rows]
        assert ipcs == sorted(ipcs)  # monotone improvement, as in paper
        assert "Table 8" in table8.render(rows)


class TestReport:
    def test_render_table_alignment(self):
        text = report.render_table(["a", "bb"], [[1, 2], [333, 4]],
                                   title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5

    def test_format_percent(self):
        assert report.format_percent(0.5) == "+50.0%"
        assert report.format_percent(0.5, signed=False) == "50.0%"
