"""Tests for context-routed 3D math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import FPContext
from repro.physics import math3d

unit = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False,
                 width=32)
vec3 = st.tuples(unit, unit, unit).map(
    lambda t: np.array(t, dtype=np.float32))


@pytest.fixture
def ctx():
    return FPContext(census=False)


class TestDotCross:
    def test_dot_basis(self, ctx):
        x = np.array([1.0, 0.0, 0.0], dtype=np.float32)
        y = np.array([0.0, 1.0, 0.0], dtype=np.float32)
        assert math3d.dot(ctx, x[None], y[None])[0] == 0.0
        assert math3d.dot(ctx, x[None], x[None])[0] == 1.0

    def test_dot_batched(self, ctx):
        a = np.arange(6, dtype=np.float32).reshape(2, 3)
        b = np.ones((2, 3), dtype=np.float32)
        assert math3d.dot(ctx, a, b).tolist() == [3.0, 12.0]

    def test_cross_right_handed(self, ctx):
        x = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        y = np.array([[0.0, 1.0, 0.0]], dtype=np.float32)
        z = math3d.cross(ctx, x, y)[0]
        assert z.tolist() == [0.0, 0.0, 1.0]

    @given(vec3, vec3)
    @settings(max_examples=100, deadline=None)
    def test_cross_orthogonal(self, a, b):
        ctx = FPContext(census=False)
        c = math3d.cross(ctx, a[None], b[None])[0].astype(np.float64)
        # c is orthogonal to both inputs (up to fp noise)
        scale = (np.linalg.norm(a) * np.linalg.norm(b)) or 1.0
        assert abs(c @ a) <= 1e-3 * scale * max(np.abs(c).max(), 1)
        assert abs(c @ b) <= 1e-3 * scale * max(np.abs(c).max(), 1)

    @given(vec3)
    @settings(max_examples=100, deadline=None)
    def test_cross_self_is_zero(self, a):
        ctx = FPContext(census=False)
        c = math3d.cross(ctx, a[None], a[None])[0]
        assert np.allclose(c, 0.0, atol=1e-2)


class TestNormNormalize:
    def test_norm(self, ctx):
        v = np.array([[3.0, 4.0, 0.0]], dtype=np.float32)
        assert math3d.norm(ctx, v)[0] == 5.0

    def test_normalize_unit_length(self, ctx):
        v = np.array([[3.0, 4.0, 0.0]], dtype=np.float32)
        unit_v, length = math3d.normalize(ctx, v)
        assert length[0] == 5.0
        assert math3d.norm(ctx, unit_v)[0] == pytest.approx(1.0, rel=1e-6)

    def test_normalize_zero_vector_safe(self, ctx):
        v = np.zeros((1, 3), dtype=np.float32)
        unit_v, length = math3d.normalize(ctx, v)
        assert length[0] == 0.0
        assert np.all(unit_v == 0.0)

    def test_scale(self, ctx):
        v = np.array([[1.0, -2.0, 3.0]], dtype=np.float32)
        assert math3d.scale(ctx, v, np.float32(2.0))[0].tolist() == \
            [2.0, -4.0, 6.0]


class TestMatvec:
    def test_identity(self, ctx):
        m = np.eye(3, dtype=np.float32)[None]
        v = np.array([[1.0, 2.0, 3.0]], dtype=np.float32)
        assert math3d.matvec(ctx, m, v)[0].tolist() == [1.0, 2.0, 3.0]

    def test_rotation_90_about_z(self, ctx):
        m = np.array([[[0.0, -1.0, 0.0],
                       [1.0, 0.0, 0.0],
                       [0.0, 0.0, 1.0]]], dtype=np.float32)
        v = np.array([[1.0, 0.0, 0.0]], dtype=np.float32)
        assert math3d.matvec(ctx, m, v)[0].tolist() == [0.0, 1.0, 0.0]


class TestQuaternions:
    def test_identity_product(self, ctx):
        q = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        p = np.array([[0.5, 0.5, 0.5, 0.5]], dtype=np.float32)
        assert np.allclose(math3d.quat_mul(ctx, q, p), p)

    def test_rotation_matrix_identity(self, ctx):
        q = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        assert np.allclose(math3d.quat_rotate_matrix(ctx, q)[0], np.eye(3))

    def test_rotation_matrix_orthonormal(self, ctx):
        angle = 0.7
        q = np.array([[np.cos(angle / 2), 0.0, np.sin(angle / 2), 0.0]],
                     dtype=np.float32)
        m = math3d.quat_rotate_matrix(ctx, q)[0].astype(np.float64)
        assert np.allclose(m @ m.T, np.eye(3), atol=1e-5)
        assert np.linalg.det(m) == pytest.approx(1.0, abs=1e-5)

    def test_quat_normalize(self, ctx):
        q = np.array([[2.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        assert np.allclose(math3d.quat_normalize(ctx, q)[0],
                           [1.0, 0.0, 0.0, 0.0])

    def test_quat_normalize_degenerate_resets(self, ctx):
        q = np.zeros((1, 4), dtype=np.float32)
        assert np.allclose(math3d.quat_normalize(ctx, q)[0],
                           [1.0, 0.0, 0.0, 0.0])

    def test_integrate_preserves_unit_norm(self, ctx):
        q = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        omega = np.array([[0.0, 3.0, 0.0]], dtype=np.float32)
        for _ in range(100):
            q = math3d.quat_integrate(ctx, q, omega, 0.01)
        norm = float(np.linalg.norm(q[0]))
        assert norm == pytest.approx(1.0, abs=1e-5)

    def test_integrate_rotates_correct_direction(self, ctx):
        q = np.array([[1.0, 0.0, 0.0, 0.0]], dtype=np.float32)
        omega = np.array([[0.0, 0.0, np.pi]], dtype=np.float32)
        # half a turn about z takes 1 second
        for _ in range(100):
            q = math3d.quat_integrate(ctx, q, omega, 0.01)
        m = math3d.quat_rotate_matrix(ctx, q)[0].astype(np.float64)
        rotated = m @ np.array([1.0, 0.0, 0.0])
        assert rotated[0] == pytest.approx(-1.0, abs=0.05)

    def test_zero_angular_velocity_is_identity(self, ctx):
        q = np.array([[0.9238795, 0.0, 0.3826834, 0.0]], dtype=np.float32)
        omega = np.zeros((1, 3), dtype=np.float32)
        q2 = math3d.quat_integrate(ctx, q, omega, 0.01)
        assert np.allclose(q2, q, atol=1e-6)
