"""Smoke tests: the example scripts run end to end.

The two heavyweight examples (hfpu_design_space, cloth_and_wall) simulate
for tens of seconds; their building blocks are covered by the experiment
tests, so here only their importability/structure is checked.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name):
    return runpy.run_path(str(EXAMPLES / name), run_name="not_main")


class TestQuickstart:
    def test_runs_and_is_believable(self, capsys):
        module = runpy.run_path(str(EXAMPLES / "quickstart.py"),
                                run_name="__main__")
        out = capsys.readouterr().out
        assert "BELIEVABLE" in out
        assert "NOT" not in out

    def test_simulate_returns_trace(self):
        module = run_example("quickstart.py")
        from repro.fp import FPContext
        trace = module["simulate"](FPContext(census=False), steps=10)
        assert len(trace) == 10


class TestAdaptiveGameLoop:
    def test_module_structure(self):
        module = run_example("adaptive_game_loop.py")
        assert callable(module["main"])


class TestHfpuDesignSpace:
    def test_module_structure(self):
        module = run_example("hfpu_design_space.py")
        assert callable(module["main"])
        assert module["PRECISION"]["lcp"] < 23


class TestClothAndWall:
    def test_draw_side_view(self, capsys):
        module = run_example("cloth_and_wall.py")
        from repro.fp import FPContext
        from repro.physics import World
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.0, 0], 0.3, 1.0)
        module["draw_side_view"](world)
        out = capsys.readouterr().out
        assert "o" in out  # the sphere appears in the ASCII view
