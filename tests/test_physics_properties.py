"""Property-based tests on physics invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fp import FPContext
from repro.physics import SolverParams, World

coords = st.floats(min_value=-3.0, max_value=3.0, allow_nan=False,
                   width=32)
masses = st.floats(min_value=0.125, max_value=10.0, allow_nan=False,
                   width=32)
speeds = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False,
                   width=32)
precisions = st.integers(min_value=4, max_value=23)


def _finite_world(world):
    n = world.bodies.count
    assert np.isfinite(world.bodies.pos[:n]).all()
    assert np.isfinite(world.bodies.linvel[:n]).all()
    assert np.isfinite(world.bodies.angvel[:n]).all()


class TestSolverInvariants:
    @given(st.lists(st.tuples(coords, coords, masses), min_size=1,
                    max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_random_drops_stay_finite(self, bodies):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0)
        for k, (x, z, m) in enumerate(bodies):
            world.add_sphere([x, 1.0 + 0.7 * k, z], 0.3, m)
        for _ in range(40):
            world.step()
        _finite_world(world)

    @given(precisions, st.sampled_from(["rn", "jam", "trunc"]))
    @settings(max_examples=15, deadline=None)
    def test_reduced_runs_stay_finite(self, precision, mode):
        world = World(ctx=FPContext({"lcp": precision,
                                     "narrow": precision},
                                    mode=mode, census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.8, 0], [0.4, 0.4, 0.4], 2.0)
        world.add_sphere([0.2, 1.8, 0.1], 0.3, 1.0)
        for _ in range(40):
            world.step()
        _finite_world(world)

    @given(st.tuples(speeds, speeds, speeds), masses)
    @settings(max_examples=25, deadline=None)
    def test_zero_gravity_free_body_momentum(self, velocity, mass):
        world = World(ctx=FPContext(census=False), gravity=(0, 0, 0))
        world.add_sphere([0, 0, 0], 0.3, mass, linvel=list(velocity))
        momentum0 = mass * np.array(velocity, dtype=np.float64)
        for _ in range(30):
            world.step()
        momentum1 = float(world.bodies.mass[0]) * \
            world.bodies.linvel[0].astype(np.float64)
        assert np.allclose(momentum0, momentum1, atol=1e-3)

    @given(st.tuples(speeds, speeds), masses, masses)
    @settings(max_examples=25, deadline=None)
    def test_two_body_collision_conserves_momentum(self, vels, m1, m2):
        world = World(ctx=FPContext(census=False), gravity=(0, 0, 0))
        world.monitor.gravity[:] = 0.0
        v1, v2 = vels
        world.add_sphere([-1.0, 0, 0], 0.3, m1, linvel=[abs(v1) + 0.5, 0, 0],
                         friction=0.0)
        world.add_sphere([1.0, 0, 0], 0.3, m2, linvel=[-abs(v2), 0, 0],
                         friction=0.0)
        p0 = (m1 * world.bodies.linvel[0] + m2 * world.bodies.linvel[1])
        for _ in range(60):
            world.step()
        p1 = (m1 * world.bodies.linvel[0] + m2 * world.bodies.linvel[1])
        assert np.allclose(p0, p1, atol=0.05 * (m1 + m2) + 0.05)

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_iteration_count_never_destabilizes(self, iterations):
        world = World(ctx=FPContext(census=False),
                      solver=SolverParams(iterations=iterations))
        world.add_ground_plane(0.0)
        world.add_box([0, 0.6, 0], [0.5, 0.5, 0.5], 2.0)
        for _ in range(30):
            world.step()
        _finite_world(world)
        assert world.bodies.pos[0, 1] < 2.0  # no launch into orbit


class TestEnergyInvariants:
    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=3))
    @settings(max_examples=20, deadline=None)
    def test_dissipative_scene_energy_never_grows(self, positions):
        world = World(ctx=FPContext(census=False))
        world.add_ground_plane(0.0, restitution=0.0, friction=0.9)
        for k, (x, z) in enumerate(positions):
            world.add_sphere([x, 0.6 + 0.8 * k, z], 0.25, 1.0,
                             restitution=0.0, friction=0.9)
        for _ in range(60):
            world.step()
        energy = world.monitor.totals()
        # allow tiny numerical wiggle (<2% of initial + absolute slack)
        assert energy.max() <= energy[0] + 0.02 * abs(energy[0]) + 0.5

    @given(masses, st.floats(min_value=1.0, max_value=6.0, width=32))
    @settings(max_examples=20, deadline=None)
    def test_impulse_energy_bookkeeping(self, mass, impulse):
        world = World(ctx=FPContext(census=False), gravity=(0, 0, 0))
        world.monitor.gravity[:] = 0.0
        world.add_sphere([0, 0, 0], 0.3, mass)
        injected = world.apply_impulse(0, [impulse, 0, 0])
        expected = 0.5 * impulse ** 2 / mass
        assert injected == pytest.approx(expected, rel=1e-4)
        world.step()
        record = world.monitor.records[-1]
        assert record.conserved == pytest.approx(0.0, abs=0.01 * expected
                                                 + 1e-6)


class TestSamePrecisionDeterminism:
    @given(precisions)
    @settings(max_examples=10, deadline=None)
    def test_identical_runs_bitwise_equal(self, precision):
        def run():
            world = World(ctx=FPContext({"lcp": precision},
                                        census=False))
            world.add_ground_plane(0.0)
            world.add_box([0, 0.8, 0], [0.4, 0.4, 0.4], 2.0)
            world.add_sphere([0.3, 1.6, 0], 0.3, 1.0)
            for _ in range(25):
                world.step()
            return world.bodies.pos[:2].copy()

        assert np.array_equal(run(), run())
