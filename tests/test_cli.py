"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import ARTIFACTS, main


class TestCli:
    def test_scenarios_lists_all(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("breakable", "ragdoll", "periodic"):
            assert name in out

    def test_run_full_precision(self, capsys):
        assert main(["run", "continuous", "--steps", "10",
                     "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "energy:" in out

    def test_run_reduced_with_census(self, capsys):
        assert main(["run", "ragdoll", "--steps", "8", "--scale", "0.4",
                     "--lcp-bits", "6", "--census"]) == 0
        out = capsys.readouterr().out
        assert "trivial" in out

    def test_tune(self, capsys):
        assert main(["tune", "continuous", "--steps", "10",
                     "--scale", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "minimum believable precision" in out

    def test_run_accepts_seed(self, capsys):
        assert main(["run", "continuous", "--steps", "6",
                     "--scale", "0.4", "--seed", "99"]) == 0
        assert "energy:" in capsys.readouterr().out

    def test_health_campaign(self, capsys):
        assert main(["health", "continuous", "--steps", "12",
                     "--scale", "0.4", "--inject-rate", "0.01",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "Health report: continuous" in out
        assert "faults injected" in out
        assert "detections" in out

    def test_health_same_seed_is_deterministic(self, capsys):
        argv = ["health", "continuous", "--steps", "10", "--scale", "0.4",
                "--inject-rate", "0.02", "--seed", "13"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second

    def test_table5_artifact(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_artifact_commands_registered(self):
        assert set(ARTIFACTS) == {
            "table1", "table3", "table4", "table5", "table8",
            "figure5", "figure6", "figure7", "figure8",
        }


class TestTraceCli:
    def test_trace_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import read_events, validate_events

        out = tmp_path / "t.jsonl"
        assert main(["trace", "continuous", "--steps", "8",
                     "--scale", "0.4", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "events ->" in stdout
        events, skipped = read_events(out)
        assert skipped == 0
        invalid, messages = validate_events(events)
        assert invalid == 0, messages
        assert events[0]["kind"] == "meta"
        assert sum(e["kind"] == "step" for e in events) == 8
        assert any(e["kind"] == "controller" for e in events)

    def test_trace_then_summarize_inline(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "continuous", "--steps", "5",
                     "--scale", "0.4", "--out", str(out),
                     "--summarize"]) == 0
        stdout = capsys.readouterr().out
        assert "trace summary: continuous" in stdout
        assert "step time" in stdout

    def test_summarize_existing_file(self, tmp_path, capsys):
        out = tmp_path / "t.jsonl"
        assert main(["trace", "continuous", "--steps", "4",
                     "--scale", "0.4", "--out", str(out)]) == 0
        capsys.readouterr()
        assert main(["trace", "--summarize", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "trace summary: continuous" in stdout

    def test_trace_without_scenario_or_file_errors(self, capsys):
        assert main(["trace"]) == 2
        assert "give a SCENARIO" in capsys.readouterr().err

    def test_guarded_trace_records_recovery_events(self, tmp_path,
                                                   capsys):
        from repro.obs import read_events

        out = tmp_path / "t.jsonl"
        code = main(["trace", "continuous", "--steps", "10",
                     "--scale", "0.4", "--guarded",
                     "--inject-rate", "0.02", "--seed", "13",
                     "--out", str(out)])
        assert code in (0, 1)
        events, _ = read_events(out)
        assert any(e["kind"] == "step" for e in events)


class TestUnknownScenarioExitCode:
    @pytest.mark.parametrize("argv", [
        ["run", "nosuch", "--steps", "2"],
        ["tune", "nosuch", "--steps", "2"],
        ["trace", "nosuch", "--steps", "2", "--out", "unused.jsonl"],
    ])
    def test_typoed_scenario_is_usage_error_2(self, argv, capsys,
                                              tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # keep stray outputs out of the repo
        assert main(argv) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'nosuch'" in err
        assert "valid scenarios" in err
        assert "Traceback" not in err


class TestServeCli:
    def test_serve_bench_smoke(self, tmp_path, capsys):
        assert main(["serve-bench", "--clients", "2", "--steps", "3",
                     "--scale", "0.4", "--fidelity-steps", "3",
                     "--output", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro serve-bench" in out
        assert "snapshot fidelity: bit-identical" in out
        assert "OK" in out
        assert list(tmp_path.glob("BENCH_*_serve.json"))

    def test_serve_and_serve_bench_registered(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        assert "--max-sessions" in capsys.readouterr().out
        with pytest.raises(SystemExit):
            main(["serve-bench", "--help"])
        assert "--clients" in capsys.readouterr().out
