"""Tests for the per-phase FPContext."""

import numpy as np
import pytest

from repro.fp import FPContext, RoundingMode
from repro.fp.rounding import FULL_PRECISION
from repro.memo.memo_table import MemoBank


def arr(*values):
    return np.array(values, dtype=np.float32)


class TestPhasePlumbing:
    def test_default_full_precision(self):
        ctx = FPContext()
        assert ctx.precision == FULL_PRECISION

    def test_phase_precision_applies(self):
        ctx = FPContext({"lcp": 4})
        with ctx.in_phase("lcp"):
            assert ctx.precision == 4
        assert ctx.precision == FULL_PRECISION

    def test_in_phase_restores_on_exception(self):
        ctx = FPContext({"lcp": 4})
        with pytest.raises(RuntimeError):
            with ctx.in_phase("lcp"):
                raise RuntimeError("boom")
        assert ctx.phase == "other"

    def test_nested_phases(self):
        ctx = FPContext({"lcp": 4, "narrow": 9})
        with ctx.in_phase("narrow"):
            assert ctx.precision == 9
            with ctx.in_phase("lcp"):
                assert ctx.precision == 4
            assert ctx.precision == 9

    def test_set_precision(self):
        ctx = FPContext()
        ctx.set_precision("lcp", 7)
        assert ctx.precision_for("lcp") == 7

    def test_set_precision_validates(self):
        ctx = FPContext()
        with pytest.raises(ValueError):
            ctx.set_precision("lcp", 24)

    def test_mode_parse_in_constructor(self):
        assert FPContext(mode="rn").mode is RoundingMode.NEAREST


class TestOperations:
    def test_results_reduced_in_phase(self):
        ctx = FPContext({"lcp": 3})
        with ctx.in_phase("lcp"):
            result = ctx.mul(arr(1.23), arr(2.47))
        mantissa_bits = np.frombuffer(result.tobytes(), dtype=np.uint32)[0]
        assert mantissa_bits & ((1 << 20) - 1) == 0

    def test_census_and_fast_numerics_match_at_full_precision(self):
        a = arr(1.5, -2.25, 0.0)
        b = arr(0.25, 4.0, 9.0)
        census = FPContext()
        fast = FPContext(census=False)
        for op in ("add", "sub", "mul", "div"):
            assert np.array_equal(getattr(census, op)(a, b),
                                  getattr(fast, op)(a, b))

    def test_sqrt_full_precision(self):
        ctx = FPContext({"lcp": 3})
        with ctx.in_phase("lcp"):
            assert ctx.sqrt(arr(2.0))[0] == np.float32(np.sqrt(2.0))

    def test_div_full_precision(self):
        ctx = FPContext({"lcp": 3})
        with ctx.in_phase("lcp"):
            assert ctx.div(arr(1.0), arr(3.0))[0] == np.float32(1.0 / 3.0)


class TestCensus:
    def test_counts_accumulate_per_phase(self):
        ctx = FPContext()
        with ctx.in_phase("lcp"):
            ctx.add(arr(1.0, 2.0), arr(3.0, 4.0))
            ctx.mul(arr(1.0), arr(3.0))
        with ctx.in_phase("narrow"):
            ctx.add(arr(1.0), arr(3.0))
        assert ctx.counter("lcp", "add").total == 2
        assert ctx.counter("lcp", "mul").total == 1
        assert ctx.counter("narrow", "add").total == 1

    def test_trivial_counted(self):
        ctx = FPContext()
        with ctx.in_phase("lcp"):
            ctx.mul(arr(1.0, 3.3), arr(5.0, 2.2))
        counter = ctx.counter("lcp", "mul")
        assert counter.conventional_trivial == 1
        assert counter.total == 2

    def test_sqrt_counted_as_div(self):
        ctx = FPContext()
        with ctx.in_phase("lcp"):
            ctx.sqrt(arr(4.0, 9.0))
        assert ctx.counter("lcp", "div").total == 2

    def test_phase_totals_merge(self):
        ctx = FPContext()
        with ctx.in_phase("lcp"):
            ctx.add(arr(1.0), arr(2.0))
            ctx.mul(arr(1.0), arr(2.0))
        assert ctx.phase_totals("lcp").total == 2

    def test_reset(self):
        ctx = FPContext()
        ctx.add(arr(1.0), arr(2.0))
        ctx.reset_stats()
        assert ctx.stats == {}

    def test_census_off_keeps_no_stats(self):
        ctx = FPContext(census=False)
        ctx.add(arr(1.0), arr(2.0))
        assert ctx.stats == {}


class TestMemoIntegration:
    def test_memo_streams_nontrivial_ops(self):
        ctx = FPContext({"lcp": 8}, memo=MemoBank())
        with ctx.in_phase("lcp"):
            ctx.add(arr(1.37, 1.37), arr(2.21, 2.21))
        counter = ctx.counter("lcp", "add")
        assert counter.memo_lookups == 2
        assert counter.memo_hits == 1  # identical pair repeats

    def test_trivial_filtered_from_memo(self):
        ctx = FPContext({"lcp": 8}, memo=MemoBank())
        with ctx.in_phase("lcp"):
            ctx.add(arr(0.0), arr(2.21))
        assert ctx.counter("lcp", "add").memo_lookups == 0

    def test_memo_budget_caps_probes(self):
        ctx = FPContext({"lcp": 8}, memo=MemoBank(), memo_budget=3)
        with ctx.in_phase("lcp"):
            ctx.add(arr(*np.linspace(1.01, 1.9, 10)),
                    arr(*np.linspace(2.01, 2.9, 10)))
        assert ctx.counter("lcp", "add").memo_lookups == 3

    def test_div_not_memoized(self):
        ctx = FPContext({"lcp": 8}, memo=MemoBank())
        with ctx.in_phase("lcp"):
            ctx.div(arr(1.3), arr(2.7))
        assert ctx.counter("lcp", "div").memo_lookups == 0


class TestCounterRegistration:
    def test_counter_registers_unseen_keys(self):
        # Regression: counter() used to hand back a detached OpCounter
        # for keys with no recorded ops, so mutations silently vanished.
        ctx = FPContext({"lcp": 8})
        counter = ctx.counter("lcp", "add")
        counter.total += 7
        assert ctx.counter("lcp", "add").total == 7
        assert ctx.stats[("lcp", "add")] is counter
        assert ctx.phase_totals("lcp").total == 7

    def test_counter_returns_existing_instance(self):
        ctx = FPContext({"lcp": 8})
        with ctx.in_phase("lcp"):
            ctx.add(arr(1.5), arr(2.5))
        before = ctx.counter("lcp", "add").total
        assert before > 0
        assert ctx.counter("lcp", "add") is ctx.stats[("lcp", "add")]
