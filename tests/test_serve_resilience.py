"""Tests for the crash-safe serve layer (``repro.serve.resilience``).

Covers the journal framing + rotation, digest-verified restart
recovery, the server-side recovery ladder (rung 0 retry, rung 1
rollback/respawn, rung 2 quarantine), graceful drain (in-process and
via SIGTERM on a real subprocess), the typed client errors, and the
retrying/reconnecting ``ResilientClient``.
"""

import json
import os
import random
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.robustness.checkpoint import capture_world, restore_world
from repro.serve import (
    Client,
    ClientTimeoutError,
    ConnectionLost,
    JournalStore,
    ResilientClient,
    RetryPolicy,
    ServeClientError,
    ServiceConfig,
    SessionConfig,
    SessionDegraded,
    SessionLost,
    SessionManager,
    read_journal,
    recover_sessions,
    start_in_thread,
    state_digest,
)
from repro.serve.resilience import SessionJournal, _encode_record, \
    _iter_records
from repro.serve.session import Session
from repro.workloads import build


def _server(**overrides):
    observer = overrides.pop("observer", None)
    defaults = dict(port=0, max_sessions=8)
    defaults.update(overrides)
    return start_in_thread(ServiceConfig(**defaults), observer=observer)


# ----------------------------------------------------------------------
# Journal framing
# ----------------------------------------------------------------------
class TestJournalFraming:
    def test_record_round_trip(self):
        blob = _encode_record("snapshot", b"payload-bytes", step=7,
                              state="abc")
        records = list(_iter_records(blob))
        assert len(records) == 1
        assert records[0].kind == "snapshot"
        assert records[0].step == 7
        assert records[0].state == "abc"
        assert records[0].payload == b"payload-bytes"

    def test_torn_tail_is_ignored_not_fatal(self):
        good = _encode_record("config", b'{"a": 1}')
        torn = _encode_record("snapshot", b"x" * 100, step=1)[:-40]
        records = list(_iter_records(good + torn))
        assert [r.kind for r in records] == ["config"]

    def test_corrupted_payload_digest_stops_iteration(self):
        first = _encode_record("config", b'{"a": 1}')
        second = bytearray(_encode_record("snapshot", b"y" * 64, step=2))
        second[-1] ^= 0xFF  # flip one payload bit
        after = _encode_record("snapshot", b"z" * 64, step=3)
        records = list(_iter_records(first + bytes(second) + after))
        # Iteration stops at the bad record; later records are not
        # trusted (offsets can no longer be believed).
        assert [r.kind for r in records] == ["config"]

    def test_session_journal_rotation_compacts_atomically(self, tmp_path):
        path = tmp_path / "s1.journal"
        journal = SessionJournal(path, max_records=4)
        journal.append_config({"session": "s1", "config": {}})
        for step in range(1, 10):
            journal.append_snapshot(b"blob%d" % step, step,
                                    "d%d" % step)
        journal.close()
        config, snapshot, count = read_journal(path)
        assert config["session"] == "s1"
        assert snapshot.step == 9 and snapshot.payload == b"blob9"
        assert count <= 4
        assert not path.with_suffix(".journal.tmp").exists()

    def test_read_journal_without_snapshot_recovers_step_zero(
            self, tmp_path):
        path = tmp_path / "s1.journal"
        journal = SessionJournal(path)
        journal.append_config({"session": "s1", "config": {}})
        journal.close()
        config, snapshot, count = read_journal(path)
        assert config is not None and snapshot is None and count == 1

    def test_store_append_flush_and_discard(self, tmp_path):
        store = JournalStore(tmp_path)
        world = build("continuous", scale=0.4, seed=3)
        store.open_session("s1", {"session": "s1", "config": {}})
        store.append_snapshot("s1", capture_world(world),
                              world.step_count, state_digest(world))
        store.flush()
        assert store.path_for("s1").exists()
        config, snapshot, _ = read_journal(store.path_for("s1"))
        assert config["session"] == "s1"
        assert snapshot is not None
        store.discard("s1")
        store.flush()
        assert not store.path_for("s1").exists()
        store.close()

    def test_recover_sessions_renames_corrupt_files(self, tmp_path):
        (tmp_path / "bad.journal").write_bytes(b"not a journal at all")
        journal = SessionJournal(tmp_path / "good.journal")
        journal.append_config({"session": "good", "config": {
            "scenario": "continuous", "scale": 0.4}})
        journal.close()
        recovered = recover_sessions(tmp_path)
        assert [r.session_id for r in recovered] == ["good"]
        assert (tmp_path / "bad.corrupt").exists()
        assert not (tmp_path / "bad.journal").exists()


# ----------------------------------------------------------------------
# The recovery ladder (unit level, no server)
# ----------------------------------------------------------------------
def _guarded_config(**overrides):
    fields = dict(scenario="continuous", scale=0.4, seed=11,
                  precision={"narrow": 10, "lcp": 10}, guarded=True)
    fields.update(overrides)
    return SessionConfig(**fields)


class TestRecoveryLadder:
    def test_injected_faults_recover_at_rung_zero(self):
        session = Session("s1", _guarded_config(inject_rate=0.2))
        for _ in range(25):
            session.step(1)
        assert session.state == "active"
        events = session.drain_recovery_events()
        assert events, "a 0.2 inject rate must trip the guards"
        assert {e["outcome"] for e in events} == {"recovered"}
        assert all(e["rung"] == 0 for e in events)
        assert session.recovery_count == len(events)

    def test_deadline_violation_recovers_without_the_delay(self):
        session = Session("s1", _guarded_config(
            chaos_slow_every=1, chaos_slow_s=0.03, step_deadline=0.005))
        session.step(1)
        events = session.drain_recovery_events()
        assert len(events) == 1
        assert events[0]["outcome"] == "recovered"
        assert "deadline" in events[0]["reason"]

    def test_persistent_failure_rolls_back_to_journal(self, monkeypatch):
        session = Session("s1", _guarded_config())
        session.mark_journaled(*session.capture_for_journal())
        journal_step = session.world.step_count
        session.step(3)  # move past the journal point
        monkeypatch.setattr(
            session.world.__class__, "step",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
            raising=True)
        with pytest.raises(SessionDegraded) as err:
            session.step(1)
        assert err.value.code == "session_degraded"
        assert err.value.extra["step"] == journal_step
        assert session.state == "active"  # degraded, not dead
        monkeypatch.undo()
        assert session.world.step_count == journal_step
        events = session.drain_recovery_events()
        assert events[-1]["outcome"] == "degraded"
        assert events[-1]["rung"] == 1

    def test_no_journal_means_quarantine(self, monkeypatch):
        session = Session("s1", _guarded_config())
        assert session.last_journal is None
        monkeypatch.setattr(
            session.world.__class__, "step",
            lambda self: (_ for _ in ()).throw(RuntimeError("boom")),
            raising=True)
        with pytest.raises(SessionLost) as err:
            session.step(1)
        assert err.value.code == "session_lost"
        assert session.state == "quarantined"
        events = session.drain_recovery_events()
        assert events[-1]["outcome"] == "lost"
        with pytest.raises(Exception):
            session.step(1)  # quarantined sessions refuse work

    def test_recovered_step_stays_on_reference_trajectory(self):
        """Rung 0 is the paper's fail-safe: after a full-precision
        re-execution the state must equal an uninjected full-precision
        step from the same boundary."""
        config = _guarded_config(inject_rate=0.0)
        a = Session("a", config)
        b = Session("b", config)
        for _ in range(5):
            a.step(1)
            b.step(1)
        assert state_digest(a.world) == state_digest(b.world)


# ----------------------------------------------------------------------
# Manager respawn + restart recovery
# ----------------------------------------------------------------------
class TestManagerRecovery:
    def test_respawn_rebuilds_from_journal_mark(self, tmp_path):
        store = JournalStore(tmp_path)
        manager = SessionManager(journal=store)
        session = manager.create(SessionConfig(
            scenario="continuous", scale=0.4, seed=5))
        session.step(4)
        checkpoint, step, state = session.capture_for_journal()
        session.mark_journaled(checkpoint, step, state)
        session.step(2)  # past the mark; a respawn rewinds these
        fresh = manager.respawn(session.id)
        assert fresh is not None and fresh is not session
        assert fresh.world.step_count == step
        assert state_digest(fresh.world) == state
        assert manager.get(session.id) is fresh
        assert session.state == "evicted"
        assert manager.respawned_total == 1
        store.close()

    def test_respawn_without_journal_mark_returns_none(self):
        manager = SessionManager()
        session = manager.create(SessionConfig(
            scenario="continuous", scale=0.4))
        assert session.last_journal is None
        assert manager.respawn(session.id) is None

    def test_recover_from_store_is_bit_identical(self, tmp_path):
        store = JournalStore(tmp_path)
        manager = SessionManager(journal=store)
        session = manager.create(SessionConfig(
            scenario="continuous", scale=0.4, seed=9,
            precision={"narrow": 12}))
        session.step(6)
        checkpoint, step, state = session.capture_for_journal()
        store.append_snapshot(session.id, checkpoint, step, state)
        store.flush()
        store.close()

        store2 = JournalStore(tmp_path)
        manager2 = SessionManager(journal=store2)
        summary = manager2.recover_from(store2)
        store2.flush()
        assert [s["ok"] for s in summary] == [True]
        recovered = manager2.get(session.id)
        assert recovered.world.step_count == step
        assert state_digest(recovered.world) == state
        assert recovered.config.precision == {"narrow": 12}
        # Session-id sequence resumes past recovered ids.
        another = manager2.create(SessionConfig(scenario="continuous",
                                                scale=0.4))
        assert another.id != session.id
        store2.close()

    def test_recovery_rejects_digest_mismatch(self, tmp_path):
        store = JournalStore(tmp_path)
        manager = SessionManager(journal=store)
        session = manager.create(SessionConfig(
            scenario="continuous", scale=0.4, seed=2))
        session.step(3)
        checkpoint, step, _ = session.capture_for_journal()
        store.append_snapshot(session.id, checkpoint, step,
                              "0" * 64)  # a digest that cannot match
        store.flush()
        store.close()
        store2 = JournalStore(tmp_path)
        summary = SessionManager(journal=store2).recover_from(store2)
        assert summary[0]["ok"] is False
        assert "digest" in summary[0]["error"]
        store2.close()


# ----------------------------------------------------------------------
# Service level: restart, respawn-on-stuck, drain, idempotency
# ----------------------------------------------------------------------
class TestServiceResilience:
    def test_restart_recovers_sessions_bit_identically(self, tmp_path):
        journal_dir = str(tmp_path / "journals")
        handle = _server(journal_dir=journal_dir, journal_every=1)
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4, seed=4)
                digest = client.step(session, 5)["digest"]
        finally:
            handle.stop()  # no drain: the crash surrogate

        handle2 = _server(journal_dir=journal_dir, journal_every=1)
        try:
            assert [r["ok"] for r in handle2.service.recovered] == [True]
            with handle2.connect() as client:
                stats = client.stats()
                [entry] = [s for s in stats["sessions"]
                           if s["session"] == session]
                assert entry["digest"] == digest
                assert entry["step"] == 5
                # The recovered session keeps stepping.
                assert client.step(session)["step"] == 6
        finally:
            handle2.stop()

    def test_stuck_step_respawns_instead_of_evicting(self, tmp_path):
        handle = _server(journal_dir=str(tmp_path / "j"),
                         journal_every=1)
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4,
                                        step_budget=1e-4)
                with pytest.raises(ServeClientError) as err:
                    client.step(session, 200)
                assert err.value.code == "budget_exceeded"
                assert "respawned" in err.value.detail
                # The session survived — unlike the journal-less path.
                response = client.request({"op": "stats"})
                assert response["respawned_total"] == 1
                assert session in {s["session"]
                                   for s in response["sessions"]}
        finally:
            handle.stop()

    def test_drain_flushes_journals_and_refuses_new_work(self, tmp_path):
        journal_dir = tmp_path / "journals"
        handle = _server(journal_dir=str(journal_dir), journal_every=50)
        client = handle.connect()
        session = client.create("continuous", scale=0.4, seed=8)
        digest = client.step(session, 3)["digest"]
        summary = handle.drain()
        assert summary["completed"] is True
        assert summary["journaled"] == 1
        client.close()
        # journal_every=50 means the only snapshot past create is the
        # drain's final flush — and it must carry the latest state.
        [rec] = recover_sessions(journal_dir)
        assert rec.step == 3
        world = build("continuous", scale=0.4, seed=8)
        world.bodies.ensure_world_row()
        restore_world(world, rec.checkpoint)
        assert state_digest(world) == digest == rec.state

    def test_draining_flag_rejects_work_with_retry_hint(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
                handle.service._draining = True
                with pytest.raises(ServeClientError) as err:
                    client.step(session)
                assert err.value.code == "draining"
                assert err.value.response["retry_after_ms"] >= 1
                assert client.ping()["draining"] is True
        finally:
            handle.service._draining = False
            handle.stop()

    def test_idempotent_request_id_replays_not_reexecutes(self):
        handle = _server()
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
                frame = {"op": "step", "session": session, "steps": 2,
                         "id": "once"}
                first = client.request(frame)
                again = client.request(frame)
                assert first["step"] == again["step"] == 2
                assert again["replayed"] is True
                assert "replayed" not in first
                # A fresh id executes for real.
                assert client.step(session)["step"] == 3
        finally:
            handle.stop()

    def test_internal_error_logs_an_incident(self):
        handle = _server()
        try:
            with handle.connect() as client:
                client.create("continuous", scale=0.4)
                original = handle.service.manager.get
                handle.service.manager.get = \
                    lambda *a: (_ for _ in ()).throw(RuntimeError("bug"))
                try:
                    with pytest.raises(ServeClientError) as err:
                        client.step("s1")
                    assert err.value.code == "internal"
                finally:
                    handle.service.manager.get = original
                assert client.stats()["incidents"] == 1
                incidents = handle.service.incidents.records
                assert "RuntimeError: bug" in incidents[0].detail
        finally:
            handle.stop()

    def test_guarded_session_recovers_over_the_wire(self):
        handle = _server(allow_chaos=True)
        try:
            with handle.connect() as client:
                session = client.create(
                    "continuous", scale=0.4, seed=3,
                    precision={"narrow": 10, "lcp": 10},
                    guarded=True, inject_rate=0.2)
                response = client.step(session, 25)
                assert response["step"] == 25
                stats = client.stats()
                assert stats["recoveries"] > 0
        finally:
            handle.stop()

    def test_chaos_fields_require_allow_chaos(self):
        handle = _server()  # allow_chaos defaults off
        try:
            with handle.connect() as client:
                with pytest.raises(ServeClientError) as err:
                    client.create("continuous", scale=0.4,
                                  inject_rate=0.5)
                assert err.value.code == "bad_request"
                assert "allow-chaos" in err.value.detail
        finally:
            handle.stop()


class TestSigtermDrain:
    def test_sigterm_drains_a_real_server_process(self, tmp_path):
        """Satellite: ``python -m repro serve`` must drain on SIGTERM
        (journals flushed, exit 0), not die with a traceback."""
        sock_path = str(tmp_path / "serve.sock")
        journal_dir = str(tmp_path / "journals")
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent
                                / "src")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--unix", sock_path, "--journal-dir", journal_dir,
             "--journal-every", "1000"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env)
        try:
            deadline = time.time() + 30
            while not os.path.exists(sock_path):
                assert proc.poll() is None, proc.stdout.read()
                assert time.time() < deadline, "server never bound"
                time.sleep(0.05)
            with Client(unix_path=sock_path, timeout=30.0) as client:
                session = client.create("continuous", scale=0.4, seed=6)
                client.step(session, 3)
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
        assert proc.returncode == 0, out
        assert "draining" in out
        assert "Traceback" not in out
        # journal_every=1000: only the drain flush can have journaled
        # the stepped state.
        [rec] = recover_sessions(journal_dir)
        assert rec.step == 3


# ----------------------------------------------------------------------
# Client: typed errors, retry policy, resilient client
# ----------------------------------------------------------------------
class TestClientErrors:
    def test_timeout_is_typed_and_carries_request_id(self):
        handle = _server()
        slow = None
        try:
            with handle.connect() as client:
                session = client.create("continuous", scale=0.4)
            slow = handle.connect(timeout=0.005)
            with pytest.raises(ClientTimeoutError) as err:
                slow.request({"op": "step", "session": session,
                              "steps": 40, "id": "pending-1"})
            assert err.value.request_id == "pending-1"
            assert isinstance(err.value, TimeoutError)
            assert not isinstance(err.value, ServeClientError)
            # After the timeout, the stale response is skipped and the
            # connection keeps correlating correctly.
            slow._sock.settimeout(30.0)
            assert slow.ping()["ok"]
        finally:
            if slow is not None:
                slow.close()
            handle.stop()

    def test_server_hangup_is_connection_lost(self):
        handle = _server()
        client = handle.connect()
        client.ping()
        handle.stop()
        with pytest.raises(ConnectionLost):
            client.ping()
        client.close()

    def test_requests_get_automatic_ids(self):
        handle = _server()
        try:
            with handle.connect() as client:
                response = client.ping()
                assert "id" in response  # echoed, therefore assigned
        finally:
            handle.stop()


class TestRetryPolicy:
    def test_backoff_grows_and_is_bounded(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=1.0, jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(a, rng) for a in range(8)]
        assert delays[0] == pytest.approx(0.1)
        assert delays[1] == pytest.approx(0.2)
        assert all(d <= 1.0 for d in delays)
        assert delays == sorted(delays)

    def test_server_hint_overrides_backoff(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.0)
        rng = random.Random(0)
        assert policy.delay(5, rng, hint_s=0.02) == pytest.approx(0.02)

    def test_jitter_spreads_delays(self):
        policy = RetryPolicy(base_delay=0.1, jitter=1.0)
        rng = random.Random(1)
        delays = {policy.delay(0, rng) for _ in range(16)}
        assert len(delays) > 1
        assert all(0.1 <= d <= 0.2 for d in delays)

    def test_busy_rejection_carries_retry_after_ms(self):
        from repro.serve import AdmissionController, AdmissionPolicy
        from repro.serve.protocol import ServiceError

        admission = AdmissionController(AdmissionPolicy(
            max_pending_per_session=1, tick_period=0.01))
        admission.admit("s1")
        with pytest.raises(ServiceError) as err:
            admission.admit("s1")
        assert err.value.code == "busy"
        assert err.value.extra["retry_after_ms"] >= 1


class TestResilientClient:
    def test_reconnects_across_a_server_restart(self, tmp_path):
        journal_dir = str(tmp_path / "journals")

        def config():
            return ServiceConfig(port=0, max_sessions=8,
                                 journal_dir=journal_dir,
                                 journal_every=1)

        holder = {"handle": start_in_thread(config())}
        client = ResilientClient(
            lambda: holder["handle"].address(),
            policy=RetryPolicy(max_attempts=10, base_delay=0.05,
                               max_delay=0.5),
            seed=0)
        try:
            session = client.create("continuous", scale=0.4, seed=12)
            client.step(session, 4)
            holder["handle"].stop()  # crash, new port on restart
            holder["handle"] = start_in_thread(config())
            response = client.step(session, 2)
            assert response["step"] == 6
            assert client.acked_step(session) == 6
            assert client.reconnects >= 2
        finally:
            client.close()
            holder["handle"].stop()

    def test_killed_connection_is_transparent(self):
        handle = _server()
        client = ResilientClient(handle.address(), seed=0)
        try:
            session = client.create("continuous", scale=0.4)
            client.step(session, 2)
            client.kill_connection()
            assert client.step(session)["step"] == 3
        finally:
            client.close()
            handle.stop()

    def test_degraded_session_gap_is_replayed(self, tmp_path):
        """A rollback response turns into extra steps, so the caller's
        view of progress never goes backwards."""
        handle = _server(journal_dir=str(tmp_path / "j"),
                         journal_every=100, allow_chaos=True)
        client = ResilientClient(handle.address(), seed=0)
        try:
            session = client.create("continuous", scale=0.4, seed=1,
                                    precision={"narrow": 10, "lcp": 10},
                                    guarded=True)
            client.step(session, 5)
            # Poison the world so both the primary step and the rung-0
            # full-precision retry fail, forcing a rung-1 rollback to
            # the only journal mark (step 0, journal_every=100); the
            # fault then clears and the client replays the gap.
            service_session = handle.service.manager.get(session)
            real_step = service_session.world.__class__.step
            calls = {"n": 0}

            def poisoned(world_self):
                calls["n"] += 1
                if calls["n"] <= 2:
                    raise RuntimeError("transient corruption")
                return real_step(world_self)

            service_session.world.__class__.step = poisoned
            try:
                response = client.step(session, 1)
            finally:
                service_session.world.__class__.step = real_step
            assert response["step"] == 6
            assert client.acked_step(session) == 6
        finally:
            client.close()
            handle.stop()
