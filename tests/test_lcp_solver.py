"""Tests for the LCP constraint solver and dynamic behaviours."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.physics import SolverParams, World
from repro.physics.joints import WORLD


def make_world(**kwargs):
    return World(ctx=FPContext(census=False), **kwargs)


class TestRestingContact:
    def test_sphere_settles_on_ground(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 2.0, 0], 0.5, 1.0)
        for _ in range(150):
            world.step()
        assert world.bodies.pos[0, 1] == pytest.approx(0.5, abs=0.02)
        assert np.linalg.norm(world.bodies.linvel[0]) < 0.1

    def test_box_settles_on_ground(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_box([0, 1.5, 0], [0.5, 0.5, 0.5], 2.0)
        for _ in range(150):
            world.step()
        assert world.bodies.pos[0, 1] == pytest.approx(0.5, abs=0.03)

    def test_no_tunnelling_through_ground(self):
        world = make_world()
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.5, 0], 0.3, 1.0, linvel=[0, -8.0, 0])
        for _ in range(200):
            world.step()
            assert world.bodies.pos[0, 1] > 0.0

    def test_stack_remains_ordered(self):
        world = make_world()
        world.add_ground_plane(0.0)
        for k in range(3):
            world.add_box([0, 0.5 + 1.01 * k, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(150):
            world.step()
        ys = world.bodies.pos[:3, 1]
        assert ys[0] < ys[1] < ys[2]
        assert ys[2] == pytest.approx(2.5, abs=0.2)


class TestRestitution:
    def test_bouncy_sphere_bounces(self):
        world = make_world()
        world.add_ground_plane(0.0, restitution=0.0)
        world.add_sphere([0, 1.5, 0], 0.25, 1.0, restitution=0.8)
        peak_after_bounce = 0.0
        bounced = False
        for _ in range(300):
            world.step()
            y = float(world.bodies.pos[0, 1])
            vy = float(world.bodies.linvel[0, 1])
            if bounced:
                peak_after_bounce = max(peak_after_bounce, y)
            elif vy > 0.5:
                bounced = True
        assert bounced
        assert peak_after_bounce > 0.5

    def test_dead_sphere_stops(self):
        world = make_world()
        world.add_ground_plane(0.0, restitution=0.0)
        world.add_sphere([0, 1.0, 0], 0.25, 1.0, restitution=0.0)
        for _ in range(200):
            world.step()
        assert abs(world.bodies.linvel[0, 1]) < 0.2
        assert world.bodies.pos[0, 1] == pytest.approx(0.25, abs=0.03)


class TestFriction:
    def test_friction_stops_slide(self):
        world = make_world()
        world.add_ground_plane(0.0, friction=1.0)
        world.add_box([0, 0.49, 0], [0.5, 0.5, 0.5], 1.0,
                      linvel=[4.0, 0, 0], friction=1.0)
        for _ in range(250):
            world.step()
        assert abs(world.bodies.linvel[0, 0]) < 0.2

    def test_frictionless_keeps_sliding(self):
        world = make_world()
        world.add_ground_plane(0.0, friction=0.0)
        world.add_box([0, 0.49, 0], [0.5, 0.5, 0.5], 1.0,
                      linvel=[4.0, 0, 0], friction=0.0)
        for _ in range(100):
            world.step()
        assert world.bodies.linvel[0, 0] > 3.0

    def test_friction_dissipates_energy_not_creates(self):
        world = make_world()
        world.add_ground_plane(0.0, friction=0.8)
        world.add_box([0, 0.49, 0], [0.5, 0.5, 0.5], 1.0,
                      linvel=[4.0, 0, 0], friction=0.8)
        for _ in range(120):
            world.step()
        energies = world.monitor.totals()
        assert energies[-1] < energies[0] * 1.02


class TestMomentum:
    def test_equal_mass_collision_transfers_momentum(self):
        world = make_world(solver=SolverParams())
        world.gravity[:] = 0.0
        world.monitor.gravity[:] = 0.0
        a = world.add_sphere([0, 1, 0], 0.3, 1.0, linvel=[2.0, 0, 0],
                             restitution=0.9, friction=0.0)
        b = world.add_sphere([1.0, 1, 0], 0.3, 1.0, restitution=0.9,
                             friction=0.0)
        momentum0 = world.bodies.linvel[:2, 0].sum()
        for _ in range(120):
            world.step()
        momentum1 = world.bodies.linvel[:2, 0].sum()
        assert momentum1 == pytest.approx(momentum0, abs=0.1)
        # target ball picks up most of the speed in a near-elastic hit
        assert world.bodies.linvel[b, 0] > 1.2
        assert abs(world.bodies.linvel[a, 0]) < 1.0

    def test_static_body_immovable(self):
        world = make_world()
        world.add_ground_plane(0.0)
        anchor = world.add_box([0, 0.5, 0], [0.5, 0.5, 0.5], 0.0)
        world.add_sphere([-2.0, 0.6, 0], 0.3, 2.0, linvel=[6.0, 0, 0])
        for _ in range(120):
            world.step()
        assert np.allclose(world.bodies.pos[anchor], [0, 0.5, 0])
        assert np.all(world.bodies.linvel[anchor] == 0.0)


class TestJoints:
    def test_ball_joint_holds_anchor(self):
        world = make_world()
        b = world.add_sphere([0.5, 2.0, 0], 0.1, 1.0)
        world.joints.add_ball(world.bodies, b, WORLD, [0, 2.0, 0])
        for _ in range(200):
            world.step()
        dist = np.linalg.norm(world.bodies.pos[b] - np.array([0, 2.0, 0]))
        assert dist == pytest.approx(0.5, abs=0.05)

    def test_pendulum_conserves_energy(self):
        world = make_world()
        b = world.add_sphere([0.4, 2.7, 0], 0.1, 1.0)
        world.joints.add_ball(world.bodies, b, WORLD, [0, 3.0, 0])
        for _ in range(250):
            world.step()
        energies = world.monitor.totals()
        assert abs(energies[-1] - energies[0]) < 0.05 * abs(energies[0])

    def test_body_body_joint_keeps_distance(self):
        world = make_world()
        world.add_ground_plane(0.0)
        a = world.add_sphere([0, 1.5, 0], 0.1, 1.0)
        b = world.add_sphere([0, 1.0, 0], 0.1, 1.0)
        world.joints.add_ball(world.bodies, a, b, [0, 1.25, 0])
        for _ in range(150):
            world.step()
        dist = np.linalg.norm(world.bodies.pos[a] - world.bodies.pos[b])
        assert dist == pytest.approx(0.5, abs=0.08)

    def test_hinge_restricts_axis(self):
        world = make_world()
        world.gravity[:] = [0, -9.8, 0]
        # A bar hinged to the world about the z axis swings in the xy
        # plane only.
        b = world.add_box([0.4, 2.0, 0], [0.4, 0.05, 0.05], 1.0)
        world.joints.add_hinge(world.bodies, b, WORLD, [0, 2.0, 0],
                               [0, 0, 1])
        for _ in range(150):
            world.step()
        assert abs(world.bodies.pos[b, 2]) < 0.05
        # angular velocity stays along z
        w = world.bodies.angvel[b]
        assert abs(w[0]) < 0.3 and abs(w[1]) < 0.3


class TestSolverRobustness:
    def test_empty_world_steps(self):
        world = make_world()
        for _ in range(10):
            world.step()
        assert world.step_count == 10

    def test_zero_iterations_no_crash(self):
        world = make_world(solver=SolverParams(iterations=0))
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.4, 0], 0.5)
        world.step()

    def test_more_iterations_less_penetration(self):
        def worst_penetration(iterations):
            world = make_world(solver=SolverParams(iterations=iterations))
            world.add_ground_plane(0.0)
            for k in range(3):
                world.add_box([0, 0.5 + 1.0 * k, 0], [0.5, 0.5, 0.5], 4.0)
            for _ in range(120):
                world.step()
            return max(world.penetration_series[60:])

        assert worst_penetration(20) <= worst_penetration(2) + 1e-5

    def test_reduced_precision_still_stable(self):
        world = World(ctx=FPContext({"lcp": 8, "narrow": 8},
                                    census=False))
        world.add_ground_plane(0.0)
        world.add_box([0, 1.0, 0], [0.5, 0.5, 0.5], 2.0)
        world.add_sphere([0.2, 2.2, 0.1], 0.3, 1.0)
        for _ in range(150):
            world.step()
        assert np.isfinite(world.bodies.pos[:2]).all()
        assert world.bodies.pos[:2, 1].max() < 3.0


class TestGaussSeidelScheme:
    def test_unknown_scheme_rejected(self):
        world = make_world(solver=SolverParams(scheme="sor"))
        world.add_ground_plane(0.0)
        world.add_sphere([0, 0.4, 0], 0.5, 1.0)
        with pytest.raises(ValueError):
            world.step()

    def test_stack_settles(self):
        world = make_world(solver=SolverParams(scheme="gauss_seidel"))
        world.add_ground_plane(0.0)
        for k in range(3):
            world.add_box([0, 0.5 + 1.01 * k, 0], [0.5, 0.5, 0.5], 1.0)
        for _ in range(120):
            world.step()
        ys = world.bodies.pos[:3, 1]
        assert ys[0] < ys[1] < ys[2]
        assert ys[2] == pytest.approx(2.5, abs=0.1)

    def test_tighter_than_jacobi(self):
        def run(scheme):
            world = make_world(solver=SolverParams(scheme=scheme))
            world.add_ground_plane(0.0)
            for k in range(3):
                world.add_box([0, 0.5 + 1.0 * k, 0], [0.5, 0.5, 0.5], 3.0)
            for _ in range(120):
                world.step()
            return max(world.penetration_series[60:])

        assert run("gauss_seidel") <= run("jacobi") + 1e-4

    def test_pendulum_energy_conserved(self):
        world = make_world(solver=SolverParams(scheme="gauss_seidel"))
        b = world.add_sphere([0.4, 2.7, 0], 0.1, 1.0)
        world.joints.add_ball(world.bodies, b, WORLD, [0, 3.0, 0])
        for _ in range(200):
            world.step()
        energies = world.monitor.totals()
        assert abs(energies[-1] - energies[0]) < 0.05 * abs(energies[0])

    def test_coloring_batches_conflict_free(self):
        from repro.physics import lcp as lcp_mod
        world = make_world()
        world.add_ground_plane(0.0)
        for k in range(4):
            world.add_box([0, 0.5 + 1.0 * k, 0], [0.5, 0.5, 0.5], 1.0)
        world.bodies.ensure_world_row()
        world.bodies.refresh_derived(world.ctx)
        from repro.physics import broadphase, narrowphase
        aabbs = world.geoms.world_aabbs(world.bodies.view("pos"),
                                        world.bodies.view("rot"))
        pairs = broadphase.candidate_pairs(world.geoms, aabbs)
        contacts = narrowphase.generate_contacts(
            world.ctx, world.bodies, world.geoms, pairs)
        rows = lcp_mod.build_rows(world.ctx, world.bodies, contacts,
                                  world.joints, world.dt, world.solver)
        batches = lcp_mod._color_rows(rows, world.bodies.world_index)
        world_index = world.bodies.world_index
        seen_rows = set()
        for batch in batches:
            bodies_in_batch = set()
            for r in batch:
                seen_rows.add(int(r))
                for body in (int(rows.ia[r]), int(rows.ib[r])):
                    if body == world_index:
                        continue
                    assert body not in bodies_in_batch
                    bodies_in_batch.add(body)
        assert seen_rows == set(range(len(rows)))

    def test_reduced_precision_gauss_seidel_stable(self):
        world = World(ctx=FPContext({"lcp": 8, "narrow": 8},
                                    census=False),
                      solver=SolverParams(scheme="gauss_seidel"))
        world.add_ground_plane(0.0)
        world.add_box([0, 1.0, 0], [0.5, 0.5, 0.5], 2.0)
        for _ in range(80):
            world.step()
        assert np.isfinite(world.bodies.pos[0]).all()
