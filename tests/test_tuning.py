"""Tests for believability evaluation and the dynamic precision
controller."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.fp.rounding import FULL_PRECISION
from repro.physics import World
from repro.tuning import (
    BelievabilityCriteria,
    ControlledSimulation,
    EnergyTrace,
    PrecisionController,
    deviation,
    energy_trace,
    is_believable,
    minimum_precision,
)


class TestDeviation:
    def _trace(self, values, blew_up=False, penetration=0.0):
        return EnergyTrace(np.array(values, dtype=float), blew_up,
                           penetration)

    def test_identical_traces(self):
        ref = self._trace([10, 11, 12])
        assert deviation(ref, self._trace([10, 11, 12])) == 0.0

    def test_blow_up_infinite(self):
        ref = self._trace([10, 11, 12])
        assert deviation(ref, self._trace([10, 11, 12], blew_up=True)) == \
            float("inf")

    def test_truncated_test_trace_infinite(self):
        ref = self._trace([10, 11, 12])
        assert deviation(ref, self._trace([10, 11])) == float("inf")

    def test_normalized_by_dynamic_range(self):
        ref = self._trace([100.0, 104.0, 100.0])  # range 4
        test = self._trace([100.0, 104.0, 101.0])  # off by 1
        assert deviation(ref, test) == pytest.approx(0.25)

    def test_floor_prevents_zero_scale(self):
        ref = self._trace([5.0, 5.0, 5.0])
        test = self._trace([5.0, 5.0, 5.4])
        assert deviation(ref, test) == pytest.approx(0.4)

    def test_believable_within_tolerance(self):
        ref = self._trace([0.0, 10.0, 0.0])
        test = self._trace([0.0, 10.5, 0.0])
        assert is_believable(ref, test)

    def test_unbelievable_beyond_tolerance(self):
        ref = self._trace([0.0, 10.0, 0.0])
        test = self._trace([0.0, 13.0, 0.0])
        assert not is_believable(ref, test)

    def test_penetration_criterion(self):
        ref = self._trace([0.0, 10.0, 0.0], penetration=0.01)
        bad = self._trace([0.0, 10.0, 0.0], penetration=0.5)
        assert not is_believable(ref, bad)
        ok = self._trace([0.0, 10.0, 0.0], penetration=0.05)
        assert is_believable(ref, ok)


class TestEnergyTrace:
    def test_full_precision_trace(self):
        trace = energy_trace("continuous", steps=15, scale=0.4)
        assert trace.steps == 15
        assert not trace.blew_up
        assert np.isfinite(trace.conserved).all()

    def test_reduced_trace_runs(self):
        trace = energy_trace("continuous", {"lcp": 5, "narrow": 8},
                             steps=15, scale=0.4)
        assert trace.steps == 15

    def test_deterministic(self):
        t1 = energy_trace("ragdoll", {"lcp": 8}, steps=10, scale=0.4)
        t2 = energy_trace("ragdoll", {"lcp": 8}, steps=10, scale=0.4)
        assert np.array_equal(t1.conserved, t2.conserved)


class TestMinimumPrecision:
    def test_monotone_output_range(self):
        bits = minimum_precision("continuous", phases=("lcp",),
                                 steps=20, scale=0.4)
        assert 1 <= bits <= FULL_PRECISION

    def test_full_precision_always_believable(self):
        trace_ref = energy_trace("periodic", steps=15, scale=0.4)
        trace_full = energy_trace("periodic", {"lcp": 23}, steps=15,
                                  scale=0.4)
        assert is_believable(trace_ref, trace_full)


class TestPrecisionController:
    def _ctx(self):
        return FPContext({"lcp": 23, "narrow": 23})

    def test_starts_at_register_minimum(self):
        ctx = self._ctx()
        PrecisionController(ctx, {"lcp": 6, "narrow": 10})
        assert ctx.precision_for("lcp") == 6
        assert ctx.precision_for("narrow") == 10

    def test_violation_throttles_to_full(self):
        ctx = self._ctx()
        controller = PrecisionController(ctx, {"lcp": 6}, threshold=0.10)
        controller.observe(0.5, step=0)
        assert ctx.precision_for("lcp") == FULL_PRECISION
        assert controller.violations == 1

    def test_stable_steps_decay_one_bit(self):
        ctx = self._ctx()
        controller = PrecisionController(ctx, {"lcp": 6})
        controller.observe(0.5, step=0)  # throttle to 23
        controller.observe(0.01, step=1)
        assert ctx.precision_for("lcp") == 22
        controller.observe(0.01, step=2)
        assert ctx.precision_for("lcp") == 21

    def test_decay_stops_at_register(self):
        ctx = self._ctx()
        controller = PrecisionController(ctx, {"lcp": 21})
        controller.observe(0.5, step=0)
        for step in range(1, 10):
            controller.observe(0.0, step=step)
        assert ctx.precision_for("lcp") == 21

    def test_none_signal_counts_as_stable(self):
        ctx = self._ctx()
        controller = PrecisionController(ctx, {"lcp": 6})
        controller.observe(None, step=0)
        assert controller.violations == 0

    def test_history_recorded(self):
        ctx = self._ctx()
        controller = PrecisionController(ctx, {"lcp": 6})
        controller.observe(0.01, step=0)
        controller.observe(0.9, step=1)
        assert len(controller.history) == 2
        assert not controller.history[0].violation
        assert controller.history[1].violation


class TestControlledSimulation:
    def _world(self, register):
        ctx = FPContext()
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.0, 0], 0.3, 1.0)
        controller = PrecisionController(ctx, register)
        return world, controller

    def test_runs_at_register_precision(self):
        world, controller = self._world({"lcp": 8, "narrow": 8})
        sim = ControlledSimulation(world, controller)
        sim.run(20)
        assert world.step_count == 20
        assert controller.current_precision("lcp") <= 8 or \
            controller.violations > 0

    def test_fail_safe_reexecutes_on_blowup(self):
        world, controller = self._world({"lcp": 1, "narrow": 1})
        sim = ControlledSimulation(world, controller)
        # Force an artificial blow-up threshold so any motion triggers it.
        controller.blowup_threshold = 1e-12
        sim.step()
        sim.step()
        assert controller.reexecutions >= 1
        # state stayed finite thanks to the full-precision redo
        assert np.isfinite(world.bodies.pos[0]).all()

    def test_energy_series_consistent_after_reexecution(self):
        world, controller = self._world({"lcp": 2, "narrow": 2})
        controller.blowup_threshold = 1e-12
        sim = ControlledSimulation(world, controller)
        sim.run(5)
        assert len(world.monitor.records) == 5

    def test_throttle_then_decay_cycle(self):
        world, controller = self._world({"lcp": 5, "narrow": 5})
        controller.threshold = 1e-9  # everything is a violation
        sim = ControlledSimulation(world, controller)
        sim.run(3)
        assert controller.current_precision("lcp") == FULL_PRECISION
        controller.threshold = 10.0  # nothing is a violation
        sim.run(4)
        assert controller.current_precision("lcp") == FULL_PRECISION - 4


class TestObserveSequences:
    """Explicit action sequences through the controller state machine."""

    def test_none_signal_decays_to_floor(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 20})
        controller.observe(0.5, step=0)  # throttle to full
        for step in range(1, 6):
            controller.observe(None, step=step)
        # 23 -> 22 -> 21 -> 20, then held at the register floor.
        assert ctx.precision_for("lcp") == 20
        bits = [log.precisions["lcp"] for log in controller.history]
        assert bits == [23, 22, 21, 20, 20, 20]

    def test_throttle_on_violation_sequence(self):
        ctx = FPContext({"lcp": 23, "narrow": 23})
        controller = PrecisionController(ctx, {"lcp": 6, "narrow": 10},
                                         threshold=0.10)
        signals = [0.01, 0.5, 0.01, None, 0.2]
        for step, signal in enumerate(signals):
            controller.observe(signal, step=step)
        violations = [log.violation for log in controller.history]
        assert violations == [False, True, False, False, True]
        assert controller.violations == 2
        # Each violation snaps every controlled phase to full precision.
        assert controller.history[1].precisions == \
            {"lcp": 23, "narrow": 23}
        assert ctx.precision_for("lcp") == 23

    def test_observe_at_floor_holds(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 6})
        controller.observe(0.01, step=0)
        assert ctx.precision_for("lcp") == 6
        assert not controller.history[0].violation


class TestReferenceCacheCriteria:
    """Regression: the reference cache must key on the criteria.

    ``max_speed`` changes blow-up detection *inside* ``energy_trace``,
    so two criteria can classify the same configuration's reference run
    differently; a criteria-blind cache key hands the second caller the
    first caller's verdict.
    """

    def test_criteria_change_reference_classification(self):
        from repro.tuning.believability import _reference

        lenient = BelievabilityCriteria()
        # Any motion at all exceeds this speed limit -> "blow-up".
        strict = BelievabilityCriteria(max_speed=1e-9)
        ref_lenient = _reference("continuous", 10, 0.4, lenient)
        ref_strict = _reference("continuous", 10, 0.4, strict)
        assert not ref_lenient.blew_up
        assert ref_strict.blew_up

    def test_criteria_cached_separately(self):
        from repro.tuning.believability import _REFERENCE_CACHE, _reference

        lenient = BelievabilityCriteria()
        strict = BelievabilityCriteria(max_speed=1e-9)
        a = _reference("continuous", 10, 0.4, lenient)
        b = _reference("continuous", 10, 0.4, lenient)
        c = _reference("continuous", 10, 0.4, strict)
        assert a is b          # same criteria still hits the cache
        assert c is not a      # different criteria gets its own entry
        keys = [k for k in _REFERENCE_CACHE
                if k[0] == "continuous" and k[1] == 10 and k[2] == 0.4]
        assert len(keys) >= 2


class TestControllerFloorRecovery:
    """Regression: a phase below the register floor must recover."""

    def test_below_floor_recovers_to_minimum(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 8})
        # External write (or partial register update) under the floor.
        ctx.set_precision("lcp", 3)
        controller.observe(0.01, step=0)
        assert ctx.precision_for("lcp") == 8

    def test_recovery_is_logged_as_recover_action(self):
        events = []

        class Spy:
            def controller_event(self, **kw):
                events.append(kw)

        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 8})
        controller.observer = Spy()
        ctx.set_precision("lcp", 3)
        controller.observe(None, step=0)
        assert events[0]["action"] == "recover"
        assert events[0]["precisions"]["lcp"] == 8

    def test_below_floor_never_persists(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 8})
        ctx.set_precision("lcp", 1)
        for step in range(3):
            controller.observe(0.0, step=step)
            assert ctx.precision_for("lcp") >= 8


class TestRestoreThroughSetPrecision:
    """Regression: the fail-safe restore must use set_precision."""

    def test_reexecution_restores_via_set_precision(self):
        ctx = FPContext()
        world = World(ctx=ctx)
        world.add_ground_plane(0.0)
        world.add_sphere([0, 1.0, 0], 0.3, 1.0)
        controller = PrecisionController(ctx, {"lcp": 4, "narrow": 4})
        controller.blowup_threshold = 1e-12  # any motion "blows up"
        sim = ControlledSimulation(world, controller)

        calls = []
        original = ctx.set_precision

        def spy(phase, bits):
            calls.append((phase, bits))
            return original(phase, bits)

        ctx.set_precision = spy
        try:
            sim.step()  # first step has no energy delta yet
            sim.step()
        finally:
            ctx.set_precision = original
        assert controller.reexecutions >= 1
        # Throttle to full, then the restore of the saved bits — all
        # through the validated setter.
        assert ("lcp", FULL_PRECISION) in calls
        assert ("lcp", 4) in calls
        assert calls.index(("lcp", 4)) > calls.index(
            ("lcp", FULL_PRECISION))


class TestFeedForwardController:
    """The surrogate= parameter on PrecisionController."""

    def test_mapping_surrogate_sets_start_precision(self):
        ctx = FPContext({"lcp": 23, "narrow": 23})
        PrecisionController(ctx, {"lcp": 6, "narrow": 8},
                            surrogate={"lcp": 12, "narrow": 10})
        assert ctx.precision_for("lcp") == 12
        assert ctx.precision_for("narrow") == 10

    def test_callable_surrogate(self):
        ctx = FPContext({"lcp": 23})
        PrecisionController(ctx, {"lcp": 6}, surrogate=lambda phase: 14)
        assert ctx.precision_for("lcp") == 14

    def test_prediction_below_floor_is_clamped(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 8},
                                         surrogate={"lcp": 2})
        assert ctx.precision_for("lcp") == 8
        assert controller.targets["lcp"] == 8

    def test_decay_stops_at_surrogate_target(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 6},
                                         surrogate={"lcp": 10})
        controller.observe(0.5, step=0)  # throttle to 23
        for step in range(1, 20):
            controller.observe(0.01, step=step)
        # Decays to the predicted target, not all the way to the floor.
        assert ctx.precision_for("lcp") == 10

    def test_energy_guard_catches_misprediction(self):
        ctx = FPContext({"lcp": 23})
        controller = PrecisionController(ctx, {"lcp": 6},
                                         surrogate={"lcp": 7})
        # The optimistic prediction produced a violation: the reactive
        # throttle must still snap to full precision.
        controller.observe(0.5, step=0)
        assert ctx.precision_for("lcp") == FULL_PRECISION
        assert controller.violations == 1

    def test_surrogate_none_prediction_falls_back_to_register(self):
        ctx = FPContext({"lcp": 23, "narrow": 23})
        PrecisionController(ctx, {"lcp": 6, "narrow": 9},
                            surrogate={"lcp": 12})  # no narrow entry
        assert ctx.precision_for("narrow") == 9
