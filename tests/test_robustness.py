"""Unit tests for the robustness subsystem (checkpoint/injector/guards)."""

import numpy as np
import pytest

from repro.fp import FPContext
from repro.fp.ops import inject_bitflip
from repro.physics import World
from repro.physics.island import island_members, islands_of
from repro.physics.lcp import solver_residual
from repro.robustness import (
    CheckpointRing,
    FaultInjector,
    GuardConfig,
    GuardedSimulation,
    PhaseGuards,
    capture_world,
    restore_world,
    run_campaign,
)


def _world():
    world = World(ctx=FPContext(census=False))
    world.add_ground_plane(0.0)
    world.add_sphere([0, 1.0, 0], 0.3, 1.0)
    world.add_sphere([1.0, 0.3, 0], 0.3, 1.0)
    return world


class TestCheckpoint:
    def test_roundtrip_restores_every_ledger(self):
        world = _world()
        for _ in range(5):
            world.step()
        checkpoint = capture_world(world)
        records = len(world.monitor.records)
        pos = world.bodies.pos[:2].copy()

        world.apply_impulse(0, [0, 8.0, 0])  # external energy injection
        for _ in range(3):
            world.step()
        world.quarantine_bodies([1])

        restore_world(world, checkpoint)
        assert np.array_equal(world.bodies.pos[:2], pos)
        assert world.step_count == 5
        assert len(world.monitor.records) == records
        assert world.monitor.injected_total == checkpoint.injected_total
        assert len(world.penetration_series) == checkpoint.penetration_len
        assert world.quarantined == set()

    def test_restore_truncates_multiple_steps(self):
        world = _world()
        for _ in range(2):
            world.step()
        checkpoint = capture_world(world)
        for _ in range(4):
            world.step()
        restore_world(world, checkpoint)
        assert world.step_count == 2
        assert len(world.monitor.records) == 2
        # the world can keep stepping coherently after the rewind
        world.step()
        assert len(world.monitor.records) == 3

    def test_warm_start_cache_restored(self):
        world = _world()
        for _ in range(30):
            world.step()  # resting contacts populate the cache
        checkpoint = capture_world(world)
        cached_keys = set(world.contact_cache._store)
        for _ in range(3):
            world.step()
        world.contact_cache._store.clear()
        restore_world(world, checkpoint)
        assert set(world.contact_cache._store) == cached_keys

    def test_ring_rollback_and_truncate(self):
        ring = CheckpointRing(depth=3)
        world = _world()
        for _ in range(5):
            ring.push(capture_world(world))
            world.step()
        assert len(ring) == 3  # bounded
        assert ring.latest().step_count == 4
        assert ring.rollback_target(2).step_count == 2
        assert ring.rollback_target(99).step_count == 2  # clamped
        ring.truncate_after(2)
        assert ring.latest().step_count == 2

    def test_ring_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            CheckpointRing(depth=0)

    def test_empty_ring_edge_cases(self):
        ring = CheckpointRing(depth=3)
        assert len(ring) == 0
        assert ring.latest() is None
        assert ring.rollback_target(0) is None
        assert ring.rollback_target(99) is None
        ring.truncate_after(5)  # no-op, no raise

    def test_rollback_target_zero_is_latest(self):
        ring = CheckpointRing(depth=3)
        world = _world()
        for _ in range(3):
            ring.push(capture_world(world))
            world.step()
        assert ring.rollback_target(0) is ring.latest()
        assert ring.rollback_target(0).step_count == 2

    def test_rollback_target_rejects_negative_depth(self):
        ring = CheckpointRing(depth=3)
        ring.push(capture_world(_world()))
        with pytest.raises(ValueError):
            ring.rollback_target(-1)

    def test_truncate_at_exact_boundary_keeps_that_checkpoint(self):
        ring = CheckpointRing(depth=8)
        world = _world()
        for _ in range(5):
            ring.push(capture_world(world))
            world.step()
        # A checkpoint captured *at* the rewind step stays valid.
        ring.truncate_after(2)
        assert len(ring) == 3
        assert ring.latest().step_count == 2

    def test_truncate_before_everything_empties_the_ring(self):
        ring = CheckpointRing(depth=8)
        world = _world()
        world.step()
        ring.push(capture_world(world))  # step_count == 1
        ring.truncate_after(0)
        assert len(ring) == 0 and ring.latest() is None


class TestCheckpointSerialization:
    def test_serialized_roundtrip_is_bit_exact(self):
        from repro.robustness import (
            deserialize_checkpoint,
            serialize_checkpoint,
        )

        world = _world()
        for _ in range(30):
            world.step()  # populate warm-start cache + ledgers
        world.quarantine_bodies([1])
        checkpoint = capture_world(world)
        back = deserialize_checkpoint(serialize_checkpoint(checkpoint))

        assert back.step_count == checkpoint.step_count
        for name, data in checkpoint.body_state.items():
            assert np.array_equal(back.body_state[name], data)
            assert back.body_state[name].dtype == data.dtype
        assert back.monitor_records == checkpoint.monitor_records
        assert back.injected_total == checkpoint.injected_total
        assert back.penetration_len == checkpoint.penetration_len
        assert back.last_contact_count == checkpoint.last_contact_count
        assert back.quarantined == checkpoint.quarantined
        assert set(back.contact_cache) == set(checkpoint.contact_cache)
        for key, entries in checkpoint.contact_cache.items():
            for (pos, imp), (bpos, bimp) in zip(entries,
                                                back.contact_cache[key]):
                assert np.array_equal(pos, bpos)
                assert tuple(imp) == tuple(bimp)

    def test_v1_frames_still_decode(self):
        """Codec v2 stacks the contact cache into whole arrays; journals
        written by the v1 per-entry codec must keep decoding."""
        import json
        import struct
        from dataclasses import replace

        from repro.robustness import deserialize_checkpoint
        from repro.robustness.checkpoint import _CODEC_MAGIC

        world = _world()
        world.solver = replace(world.solver, warm_start=True)
        for _ in range(30):
            world.step()  # populate the warm-start cache
        checkpoint = capture_world(world)
        assert checkpoint.contact_cache  # the compat test needs entries

        arrays = []

        def ref(arr):
            arr = np.ascontiguousarray(arr)
            arrays.append(arr)
            return {"dtype": arr.dtype.str, "shape": list(arr.shape)}

        header = {
            "codec": 1,
            "step_count": checkpoint.step_count,
            "body_state": {name: ref(data)
                           for name, data
                           in checkpoint.body_state.items()},
            "cloth_state": [[ref(pos), ref(vel)]
                            for pos, vel in checkpoint.cloth_state],
            "monitor_records": checkpoint.monitor_records,
            "injected_total": checkpoint.injected_total,
            "penetration_len": checkpoint.penetration_len,
            "last_contact_count": checkpoint.last_contact_count,
            "contact_cache": [
                [list(key), [[ref(pos), list(map(float, imp))]
                             for pos, imp in entries]]
                for key, entries in checkpoint.contact_cache.items()],
            "quarantined": sorted(int(b)
                                  for b in checkpoint.quarantined),
        }
        head = json.dumps(header, separators=(",", ":")).encode("utf-8")
        blob = b"".join([_CODEC_MAGIC, struct.pack("<I", len(head)),
                         head] + [a.tobytes() for a in arrays])

        back = deserialize_checkpoint(blob)
        assert list(back.contact_cache) == list(checkpoint.contact_cache)
        for key, entries in checkpoint.contact_cache.items():
            for (pos, imp), (bpos, bimp) in zip(entries,
                                                back.contact_cache[key]):
                assert np.array_equal(pos, bpos)
                assert tuple(imp) == tuple(bimp)

    def test_deserialize_rejects_corrupt_payloads(self):
        from repro.robustness import (
            deserialize_checkpoint,
            serialize_checkpoint,
        )

        blob = serialize_checkpoint(capture_world(_world()))
        with pytest.raises(ValueError, match="magic"):
            deserialize_checkpoint(b"NOTACKPT" + blob[8:])
        with pytest.raises(ValueError, match="truncated"):
            deserialize_checkpoint(blob[:-8])
        # corrupt the JSON header (bytes after magic + length prefix)
        mangled = blob[:16] + b"\x00\x00" + blob[18:]
        with pytest.raises(ValueError):
            deserialize_checkpoint(mangled)

    @pytest.mark.parametrize("scenario", ["continuous", "ragdoll"])
    def test_fresh_world_continues_bit_identically(self, scenario):
        """capture -> bytes -> restore into a *fresh* world: the next
        20 steps match the original trajectory bit for bit (the
        property repro.serve's snapshot/restore endpoint depends on)."""
        from repro.robustness import (
            deserialize_checkpoint,
            serialize_checkpoint,
        )
        from repro.workloads import build

        reference = build(scenario, scale=0.4, seed=17)
        for _ in range(10):
            reference.step()
        blob = serialize_checkpoint(capture_world(reference))

        fresh = build(scenario, scale=0.4, seed=17)
        fresh.bodies.ensure_world_row()
        restore_world(fresh, deserialize_checkpoint(blob))
        assert fresh.step_count == 10

        n = reference.bodies.count
        for _ in range(20):
            reference.step()
            fresh.step()
            for name in ("pos", "quat", "linvel", "angvel"):
                assert np.array_equal(
                    getattr(reference.bodies, name)[:n],
                    getattr(fresh.bodies, name)[:n]), name
        for ref_cloth, new_cloth in zip(reference.cloths, fresh.cloths):
            assert np.array_equal(ref_cloth.pos, new_cloth.pos)
            assert np.array_equal(ref_cloth.vel, new_cloth.vel)


class TestFaultInjector:
    def _corrupt(self, injector, n=256, precision=8):
        values = np.ones(n, dtype=np.float32)
        return injector.corrupt("lcp", "add", values, precision)

    def test_deterministic_event_stream(self):
        a = FaultInjector(rate=0.05, seed=9)
        b = FaultInjector(rate=0.05, seed=9)
        self._corrupt(a)
        self._corrupt(b)
        assert a.events == b.events
        assert a.events  # rate 0.05 over 256 lanes must hit

    def test_bitflips_confined_to_kept_mantissa_window(self):
        injector = FaultInjector(rate=0.3, seed=1,
                                 kind_weights={"bitflip": 1.0})
        self._corrupt(injector, precision=8)
        assert injector.events
        for event in injector.events:
            assert 23 - 8 <= event.bit < 23  # the bits the 8-bit FPU keeps

    def test_nan_and_inf_poisoning(self):
        injector = FaultInjector(rate=0.2, seed=2,
                                 kind_weights={"nan": 0.5, "inf": 0.5})
        out = self._corrupt(injector)
        assert not np.isfinite(out).all()

    def test_disabled_injector_is_silent(self):
        injector = FaultInjector(rate=1.0, seed=0)
        injector.enabled = False
        out = self._corrupt(injector)
        assert np.all(out == 1.0)
        assert not injector.events

    def test_untargeted_phase_untouched(self):
        injector = FaultInjector(rate=1.0, seed=0, phases=("narrow",))
        out = injector.corrupt("integrate", "add",
                               np.ones(64, np.float32), 23)
        assert np.all(out == 1.0)

    def test_reset_replays_the_stream(self):
        injector = FaultInjector(rate=0.1, seed=5)
        self._corrupt(injector)
        first = list(injector.events)
        injector.reset()
        self._corrupt(injector)
        assert injector.events == first

    def test_inject_bitflip_primitive(self):
        values = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        inject_bitflip(values, 1, 22)  # flip the mantissa MSB of lane 1
        assert values[0] == 1.0 and values[2] == 3.0
        assert values[1] == 3.0  # 2.0 with mantissa MSB set = 3.0

    def test_context_routes_results_through_injector(self):
        ctx = FPContext({"lcp": 8}, census=False)
        ctx.injector = FaultInjector(rate=1.0, seed=4,
                                     kind_weights={"nan": 1.0})
        with ctx.in_phase("lcp"):
            out = ctx.add(np.ones(16, np.float32), np.ones(16, np.float32))
        assert np.isnan(out).all()
        with ctx.in_phase("integrate"):  # untargeted phase: clean
            out = ctx.add(np.ones(16, np.float32), np.ones(16, np.float32))
        assert np.all(out == 2.0)


class TestPhaseGuards:
    def test_finite_position_violation_names_the_body(self):
        world = _world()
        world.step()
        world.bodies.pos[1, 1] = np.nan
        guards = PhaseGuards()
        guards.after_integrate(world, None)
        violations = guards.drain()
        kinds = {v.guard for v in violations}
        assert "finite-position" in kinds
        offender = next(v for v in violations
                        if v.guard == "finite-position")
        assert offender.bodies == (1,)
        assert not guards.violations  # drained

    def test_speed_ceiling(self):
        world = _world()
        world.bodies.linvel[0] = [500.0, 0, 0]
        guards = PhaseGuards(GuardConfig(max_speed=100.0))
        guards.after_integrate(world, None)
        assert any(v.guard == "speed" and v.bodies == (0,)
                   for v in guards.drain())

    def test_energy_delta_guard(self):
        world = _world()
        for _ in range(2):
            world.step()
        world.monitor.records[-1].kinetic += 1e9  # fake a blow-up
        guards = PhaseGuards(GuardConfig(max_energy_delta=0.5))
        guards.after_integrate(world, None)
        assert any(v.guard == "energy-delta" for v in guards.drain())

    def test_lcp_guards_flag_nonfinite(self):
        world = _world()
        world.bodies.linvel[0, 0] = np.inf
        guards = PhaseGuards()
        guards.after_lcp(world, residual=float("nan"))
        kinds = {v.guard for v in guards.drain()}
        assert kinds == {"finite-velocity", "lcp-residual"}

    def test_contact_count_ceiling(self):
        world = _world()
        guards = PhaseGuards(GuardConfig(max_contacts_per_body=0))

        class FakeContacts:
            depth = np.zeros(100, np.float32)
            pos = np.zeros((100, 3), np.float32)
            normal = np.zeros((100, 3), np.float32)
            body_a = np.zeros(100, np.int32)
            body_b = np.zeros(100, np.int32)

            def __len__(self):
                return 100

        guards.after_narrow(world, FakeContacts())
        assert any(v.guard == "contact-count" for v in guards.drain())

    def test_quiet_world_raises_nothing(self):
        world = _world()
        guards = PhaseGuards()
        world.guards = guards
        for _ in range(10):
            world.step()
        assert guards.drain() == []
        assert guards.checks_run == 30  # three boundaries per step


class TestSolverResidual:
    def test_empty_rows_zero(self):
        world = _world()
        assert solver_residual(world.bodies, None) == 0.0

    def test_resting_contact_residual_small(self):
        world = _world()
        world.guards = PhaseGuards()
        for _ in range(40):
            world.step()
        assert 0.0 <= world.last_lcp_residual < 1.0


class TestIslandHelpers:
    def test_members_and_attribution(self):
        labels = np.array([0, 0, 1, -1, 2], dtype=np.int32)
        assert list(island_members(labels, 0)) == [0, 1]
        assert islands_of(labels, [1, 2, 4]) == [0, 1, 2]
        assert islands_of(labels, [3]) == []  # static body: no island
        assert islands_of(labels, [99, -5]) == []  # out of range ignored

    def test_quarantine_islands_scopes_to_label(self):
        world = _world()
        world.step()  # compute island labels
        labels = world.island_labels
        target = int(labels[0])
        members = world.quarantine_islands([target])
        assert 0 in members
        others = [b for b in range(world.bodies.count)
                  if int(labels[b]) != target]
        assert all(b not in world.quarantined for b in others)

    def test_quarantined_body_ignores_wakes_and_impulses(self):
        world = _world()
        world.step()
        world.quarantine_bodies([0])
        world._wake(0)
        assert world.bodies.asleep[0]
        assert world.apply_impulse(0, [0, 100.0, 0]) == 0.0
        assert np.all(world.bodies.linvel[0] == 0.0)
        world.release_quarantine()
        assert not world.bodies.asleep[0]


class TestRunCampaign:
    def test_zero_rate_is_a_clean_run(self):
        sim = run_campaign("continuous", steps=12, scale=0.4,
                           inject_rate=0.0, seed=1)
        report = sim.health_report("continuous")
        assert report.faults_injected == 0
        assert report.status == "HEALTHY"
        assert report.steps == 12

    def test_report_render_mentions_the_ladder(self):
        sim = run_campaign("continuous", steps=20, scale=0.4,
                           inject_rate=5e-3, seed=7)
        text = sim.health_report("continuous").render(max_log_lines=5)
        assert "Health report: continuous" in text
        assert "faults injected" in text
        assert "final state: finite" in text


class TestHealthReportLogTail:
    def _report(self, incidents):
        from collections import Counter

        from repro.robustness import IncidentLog
        from repro.robustness.incidents import HealthReport

        log = IncidentLog()
        for step in range(incidents):
            log.detection(step, "lcp", f"incident-{step}")
        return HealthReport(
            scenario="unit", steps=incidents, bodies=2,
            faults_injected=incidents, detections=incidents,
            recoveries=0, recoveries_by_rung=Counter(),
            detections_by_guard=Counter(), quarantined_bodies=0,
            aborted=False, final_state_finite=True, log=log)

    def test_truncation_keeps_the_tail(self):
        # Regression: max_log_lines used to keep the FIRST N incidents,
        # hiding the most recent (most diagnostic) ones.
        text = self._report(7).render(max_log_lines=3)
        assert "incident-6" in text
        assert "incident-4" in text
        assert "incident-0" not in text
        assert "... 4 earlier incident(s) omitted" in text

    def test_no_elision_marker_when_log_fits(self):
        text = self._report(3).render(max_log_lines=5)
        assert "omitted" not in text
        assert "incident-0" in text and "incident-2" in text

    def test_untruncated_render_shows_everything(self):
        text = self._report(4).render()
        assert all(f"incident-{i}" in text for i in range(4))
        assert "omitted" not in text
